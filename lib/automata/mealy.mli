(** Deterministic Mealy machines (finite-state transducers).

    These are the concrete, {e enumerable} strategy descriptions behind
    Theorem 1: a countable class of finite-state strategies is obtained
    by decoding natural numbers into machines.  States and symbols are
    dense integers; the initial state is always 0. *)

type t = private {
  states : int;   (** number of states; the initial state is 0 *)
  inputs : int;   (** input alphabet size *)
  outputs : int;  (** output alphabet size *)
  next : int array array;  (** [next.(s).(i)] is the successor state *)
  out : int array array;   (** [out.(s).(i)] is the emitted symbol *)
}

val make :
  states:int -> inputs:int -> outputs:int ->
  next:int array array -> out:int array array -> t
(** Validates all dimensions and ranges.  @raise Invalid_argument. *)

val constant : inputs:int -> outputs:int -> int -> t
(** One-state machine that always emits the given symbol. *)

val identity : size:int -> t
(** One-state machine that echoes its input. *)

val map_output : (int -> int) -> outputs:int -> t -> t
(** Post-compose a relabelling on outputs (e.g. a dialect permutation). *)

val map_input : (int -> int) -> t -> t
(** Pre-compose a relabelling on inputs.  [f] must map [0..inputs-1]
    into range; the input alphabet size is unchanged. *)

val step : t -> int -> int -> int * int
(** [step m s i] is [(s', o)].  @raise Invalid_argument out of range. *)

val run : t -> int list -> int list
(** Outputs along the run from state 0 over the given input word. *)

val cascade : t -> t -> t
(** [cascade m1 m2] feeds [m1]'s output into [m2]; requires
    [m1.outputs = m2.inputs].  @raise Invalid_argument otherwise. *)

val count : states:int -> inputs:int -> outputs:int -> int
(** Number of distinct machines with these dimensions, saturating at
    [max_int] on overflow. *)

val encode : t -> int
(** Canonical index of the machine among machines of its dimensions
    (mixed-radix over the transition table). *)

val decode : states:int -> inputs:int -> outputs:int -> int -> t option
(** Inverse of {!encode}; [None] if the code is out of range. *)

val enumerate : states:int -> inputs:int -> outputs:int -> t Enum.t
(** All machines of exactly these dimensions, in {!encode} order.  When
    {!count} saturates (true cardinality above [max_int]) the
    enumeration's cardinality is [None] — every representable index
    still decodes, but the class is reported as uncountable instead of
    silently truncated to [max_int]. *)

val enumerate_up_to : max_states:int -> inputs:int -> outputs:int -> t Enum.t
(** All machines with 1, 2, ..., [max_states] states, smaller first.
    @raise Invalid_argument if a non-final layer's {!count} saturates
    (the layers above it would be unreachable — historically this
    truncated silently). *)

val equal_behaviour : depth:int -> t -> t -> bool
(** Do the two machines produce identical outputs on every input word of
    length at most [depth]?  (Exact bisimulation check up to [depth];
    machines must share input/output alphabet sizes.) *)

val pp : Format.formatter -> t -> unit
