(** The user's view of an execution.

    Sensing functions (§3) are predicates of "the history of the portion
    of the system visible to the user": the messages the user received
    and sent, round by round.  Views grow by one event per round;
    internally they are stored most-recent-first so extension is O(1)
    and sensing functions that inspect recent rounds stay cheap. *)

type event = {
  round : int;
  from_server : Msg.t;
  from_world : Msg.t;  (** received by the user this round *)
  to_server : Msg.t;
  to_world : Msg.t;  (** sent by the user this round *)
  halted : bool;
}

type t

val empty : t
val extend : t -> event -> t
val length : t -> int

val events : t -> event list
(** Chronological. *)

val events_rev : t -> event list
(** Most recent first (O(1)). *)

val latest : t -> event option

val last_n : int -> t -> event list
(** The last [n] events, chronological. *)

val drop_latest : int -> t -> t
(** The view as it was [k] rounds ago (the [k] most recent events
    removed); [t] itself when [k <= 0], {!empty} when [k >= length t].
    O(k).  Used by tolerant sensing to re-evaluate a verdict on recent
    prefixes of the same view. *)

val of_history : History.t -> t
(** Project a full history onto what the user saw. *)

val fold_events : History.t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Fold over the user-visible events of a history in chronological
    order, without materialising any view: the stream of events
    {!of_history} would build, one per round.  This is the single pass
    incremental sensing rides on. *)

val prefixes : History.t -> t list
(** Views after round 1, 2, ..., in order — each sharing structure with
    the next, so materialising all prefixes is O(rounds). *)
