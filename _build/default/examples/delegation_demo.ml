(* Delegation of computation (the Juba–Sudan scenario inside the
   general model): the world poses a planted-satisfiable 3-CNF; the
   user relays it to a DPLL-solving server it shares no command
   language with, verifies the claimed assignment, and forwards it to
   the world.  A lying solver is caught by the same verification.

   Run with:  dune exec examples/delegation_demo.exe *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let alphabet = 4

let () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Delegation.goal ~alphabet () in
  let config = Exec.config ~horizon:6_000 () in
  Format.printf "delegating SAT search (8 vars, 20 clauses) to dialected solvers@.@.";
  List.iter
    (fun i ->
      let server = Delegation.server ~alphabet (Enum.get_exn dialects i) in
      let user = Delegation.universal_user ~alphabet dialects in
      let outcome, history =
        Exec.run_outcome ~config ~goal ~user ~server (Rng.make (10 + i))
      in
      Format.printf "solver @@ dialect %d: achieved=%b in %3d rounds@." i
        outcome.Outcome.achieved (History.length history))
    (Listx.range 0 alphabet);
  (* The liar: answers are corrupted so they fail verification. *)
  let liar = Transform.with_dialect (Enum.get_exn dialects 0) (Delegation.liar ~alphabet) in
  let user = Delegation.universal_user ~alphabet dialects in
  let outcome, history = Exec.run_outcome ~config ~goal ~user ~server:liar (Rng.make 99) in
  Format.printf
    "@.lying solver    : achieved=%b (%d corrupted answers caught by verification)@."
    outcome.Outcome.achieved
    (Delegation.bad_answers history);
  (* Peek at one transcript: the formula and the verified answer. *)
  let server = Delegation.server ~alphabet (Enum.get_exn dialects 1) in
  let user = Delegation.informed_user ~alphabet (Enum.get_exn dialects 1) in
  let history = Exec.run ~config ~goal ~user ~server (Rng.make 7) in
  let formula =
    List.find_map
      (fun (r : History.Round.t) ->
        match r.world_view with
        | Msg.Pair (Msg.Text _, cnf) -> Some cnf
        | _ -> None)
      (History.rounds history)
  in
  (match formula with
  | Some cnf -> Format.printf "@.sample formula posed by the world:@.  %s@." (Msg.to_string cnf)
  | None -> ());
  let answer =
    List.find_map
      (fun (r : History.Round.t) ->
        match r.user_to_world with Msg.Seq _ as m -> Some m | _ -> None)
      (History.rounds history)
  in
  match answer with
  | Some m -> Format.printf "assignment relayed by the user:@.  %s@." (Msg.to_string m)
  | None -> ()
