(* Unit tests for server transforms and dialect message coding. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers

let echo_server =
  Strategy.stateless ~name:"echo" (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Silence -> Io.Server.silent
      | m -> Io.Server.say_user m)

let step_server server msg =
  let rng = Rng.make 1 in
  let inst = Strategy.Instance.create server in
  Strategy.Instance.step rng inst
    { Io.Server.from_user = msg; from_world = Msg.Silence }

(* Dialect_msg *)

let test_dialect_msg_encode_decode () =
  let d = Dialect.of_array [| 2; 0; 1 |] in
  let m = Msg.Pair (Msg.Sym 0, Msg.Seq [ Msg.Sym 1; Msg.Int 5; Msg.Text "x" ]) in
  let enc = Dialect_msg.encode d m in
  Alcotest.(check bool) "encoded" true
    (Msg.equal enc (Msg.Pair (Msg.Sym 2, Msg.Seq [ Msg.Sym 0; Msg.Int 5; Msg.Text "x" ])));
  Alcotest.(check bool) "roundtrip" true (Msg.equal m (Dialect_msg.decode d enc))

let test_dialect_msg_out_of_range_syms () =
  let d = Dialect.of_array [| 1; 0 |] in
  (* Symbol 7 is outside the dialect's 2-symbol alphabet: untouched. *)
  Alcotest.(check bool) "out of range untouched" true
    (Msg.equal (Msg.Sym 7) (Dialect_msg.encode d (Msg.Sym 7)))

let test_dialect_msg_identity () =
  let d = Dialect.identity 4 in
  let m = Msg.Seq [ Msg.Sym 0; Msg.Sym 3 ] in
  Alcotest.(check bool) "identity" true (Msg.equal m (Dialect_msg.encode d m))

(* with_dialect *)

let test_with_dialect_translates_both_ways () =
  let d = Dialect.rotation ~size:4 1 in
  let server = Transform.with_dialect d echo_server in
  (* User speaks the dialect: sends Sym 1 (= canonical 0 encoded).  The
     base echo sees canonical 0, replies 0, encoded back to Sym 1. *)
  let act = step_server server (Msg.Sym 1) in
  Alcotest.(check bool) "echoed in dialect" true
    (Msg.equal act.Io.Server.to_user (Msg.Sym 1))

let test_with_dialect_mismatch_visible () =
  let d = Dialect.rotation ~size:4 1 in
  (* A canonical-speaking user sends Sym 0; the dialected echo decodes it
     to 3, echoes 3, and encodes the reply back to Sym 0 — so a pure
     echo hides the dialect; a non-symmetric base must be used to
     observe it.  Check the decoded view through a counting server. *)
  let seen = ref [] in
  let spy =
    Strategy.stateless ~name:"spy" (fun (obs : Io.Server.obs) ->
        (match obs.from_user with
        | Msg.Sym s -> seen := s :: !seen
        | _ -> ());
        Io.Server.silent)
  in
  let server = Transform.with_dialect d spy in
  ignore (step_server server (Msg.Sym 0));
  Alcotest.(check (list int)) "decoded to canonical 3" [ 3 ] !seen

let test_dialect_class_enumerates () =
  let dialects = Dialect.enumerate_rotations ~size:3 in
  let cls = Transform.dialect_class ~base:echo_server dialects in
  Alcotest.(check (option int)) "card" (Some 3) (Enum.cardinality cls)

(* noisy *)

let test_noisy_drops_messages () =
  let noisy = Transform.noisy ~flip_prob:1.0 echo_server in
  let act = step_server noisy (Msg.Int 3) in
  Alcotest.(check bool) "dropped" true (Msg.is_silence act.Io.Server.to_user);
  let clean = Transform.noisy ~flip_prob:0.0 echo_server in
  let act = step_server clean (Msg.Int 3) in
  Alcotest.(check bool) "passes" true (Msg.equal act.Io.Server.to_user (Msg.Int 3))

let test_noisy_validation () =
  Alcotest.check_raises "prob" (Invalid_argument "Transform.noisy: flip_prob out of range")
    (fun () -> ignore (Transform.noisy ~flip_prob:1.5 echo_server))

(* lazy_every *)

let test_lazy_every () =
  let lazy_server = Transform.lazy_every 3 echo_server in
  let rng = Rng.make 2 in
  let inst = Strategy.Instance.create lazy_server in
  let feed m =
    Strategy.Instance.step rng inst
      { Io.Server.from_user = m; from_world = Msg.Silence }
  in
  let a1 = feed (Msg.Int 1) in
  let a2 = feed (Msg.Int 2) in
  let a3 = feed (Msg.Int 3) in
  Alcotest.(check bool) "skip 1" true (Msg.is_silence a1.Io.Server.to_user);
  Alcotest.(check bool) "skip 2" true (Msg.is_silence a2.Io.Server.to_user);
  Alcotest.(check bool) "answers 3rd" true
    (Msg.equal a3.Io.Server.to_user (Msg.Int 3))

(* unhelpful servers *)

let test_silent_server () =
  let act = step_server (Transform.silent ()) (Msg.Int 1) in
  Alcotest.(check bool) "silent" true
    (Msg.is_silence act.Io.Server.to_user && Msg.is_silence act.Io.Server.to_world)

let test_babbler_emits_syms () =
  let act = step_server (Transform.babbler ~alphabet_size:5) Msg.Silence in
  (match act.Io.Server.to_user with
  | Msg.Sym s -> Alcotest.(check bool) "in range" true (s >= 0 && s < 5)
  | _ -> Alcotest.fail "expected a symbol")

let test_deaf_server_ignores_user () =
  let deaf = Transform.deaf echo_server in
  let act = step_server deaf (Msg.Int 9) in
  Alcotest.(check bool) "no echo" true (Msg.is_silence act.Io.Server.to_user)

let () =
  Alcotest.run "servers"
    [
      ( "dialect_msg",
        [
          Alcotest.test_case "encode/decode" `Quick test_dialect_msg_encode_decode;
          Alcotest.test_case "out of range" `Quick test_dialect_msg_out_of_range_syms;
          Alcotest.test_case "identity" `Quick test_dialect_msg_identity;
        ] );
      ( "transform",
        [
          Alcotest.test_case "with_dialect translates" `Quick test_with_dialect_translates_both_ways;
          Alcotest.test_case "mismatch visible" `Quick test_with_dialect_mismatch_visible;
          Alcotest.test_case "dialect class" `Quick test_dialect_class_enumerates;
          Alcotest.test_case "noisy" `Quick test_noisy_drops_messages;
          Alcotest.test_case "noisy validation" `Quick test_noisy_validation;
          Alcotest.test_case "lazy" `Quick test_lazy_every;
          Alcotest.test_case "silent" `Quick test_silent_server;
          Alcotest.test_case "babbler" `Quick test_babbler_emits_syms;
          Alcotest.test_case "deaf" `Quick test_deaf_server_ignores_user;
        ] );
    ]
