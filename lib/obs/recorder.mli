(** In-memory trace capture, for tests and post-hoc analysis. *)

open Goalcom

type t

val create : unit -> t
val sink : t -> Trace.sink
val events : t -> Trace.event list
(** Chronological. *)

val length : t -> int
val clear : t -> unit

val record : (unit -> 'a) -> 'a * Trace.event list
(** [record f] runs [f] with a fresh recorder installed as the ambient
    sink ({!Trace.with_sink}) and returns its result with the captured
    trace. *)
