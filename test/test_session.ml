(* Tests for the supervised concurrent session engine: restart
   policies, circuit breakers, admission control, chaos-schedule
   parsing, engine determinism across jobs counts, and the qcheck
   crash-restart equivalence property (a supervised session interrupted
   by kills reaches the same goal state as an uninterrupted run). *)

open Goalcom
open Goalcom_prelude
open Goalcom_session
open Goalcom_harness

(* --- Policy ----------------------------------------------------------- *)

let test_policy_gives_up () =
  let p = Policy.make ~max_restarts:2 () in
  Alcotest.(check bool) "1st failure retries" false (Policy.gives_up p ~failures:1);
  Alcotest.(check bool) "2nd failure retries" false (Policy.gives_up p ~failures:2);
  Alcotest.(check bool) "3rd failure gives up" true (Policy.gives_up p ~failures:3)

let test_policy_backoff_growth () =
  (* jitter 0: the schedule is the bare capped exponential. *)
  let p =
    Policy.make ~backoff_base:1 ~backoff_factor:2.0 ~backoff_max:16 ~jitter:0.0 ()
  in
  let rng = Rng.make 1 in
  let waits = List.map (fun a -> Policy.backoff p rng ~attempt:a) [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check (list int)) "capped exponential" [ 1; 2; 4; 8; 16; 16; 16 ] waits

let test_policy_backoff_jitter_deterministic () =
  let p = Policy.make ~jitter:0.5 () in
  let schedule seed =
    let rng = Rng.make seed in
    List.map (fun a -> Policy.backoff p rng ~attempt:a) [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "same seed, same jitter" (schedule 7) (schedule 7);
  List.iter
    (fun w -> Alcotest.(check bool) "wait >= 1" true (w >= 1))
    (schedule 11)

(* --- Breaker ---------------------------------------------------------- *)

let test_breaker_lifecycle () =
  let b = Breaker.make ~threshold:2 ~cooldown:3 () in
  let allow tick = fst (Breaker.allow b ~tick) in
  Alcotest.(check bool) "closed allows" true (allow 1);
  Alcotest.(check bool) "no trip yet" true (Breaker.record_failure b ~tick:1 = None);
  Alcotest.(check bool) "trips at threshold" true
    (Breaker.record_failure b ~tick:2 = Some Breaker.Tripped);
  Alcotest.(check bool) "open blocks" false (allow 3);
  Alcotest.(check bool) "open blocks until cooldown" false (allow 4);
  (* cooldown elapsed: one half-open probe is let through *)
  let ok, change = Breaker.allow b ~tick:5 in
  Alcotest.(check bool) "half-open probes" true ok;
  Alcotest.(check bool) "probing change" true (change = Some Breaker.Probing);
  Alcotest.(check bool) "only one probe" false (allow 5);
  Alcotest.(check bool) "probe success recloses" true
    (Breaker.record_success b = Some Breaker.Reclosed);
  Alcotest.(check bool) "closed again" true (allow 6);
  Alcotest.(check int) "one trip counted" 1 (Breaker.trips b)

let test_breaker_probe_failure_reopens () =
  let b = Breaker.make ~threshold:1 ~cooldown:2 () in
  ignore (Breaker.record_failure b ~tick:1);
  let ok, _ = Breaker.allow b ~tick:3 in
  Alcotest.(check bool) "probe allowed" true ok;
  Alcotest.(check bool) "probe failure retrips" true
    (Breaker.record_failure b ~tick:3 = Some Breaker.Tripped);
  Alcotest.(check bool) "open again" false (fst (Breaker.allow b ~tick:4));
  Alcotest.(check int) "two trips" 2 (Breaker.trips b)

let test_breaker_success_resets_consecutive () =
  let b = Breaker.make ~threshold:2 ~cooldown:2 () in
  ignore (Breaker.record_failure b ~tick:1);
  ignore (Breaker.record_success b);
  Alcotest.(check bool) "success broke the streak" true
    (Breaker.record_failure b ~tick:2 = None);
  Alcotest.(check int) "never tripped" 0 (Breaker.trips b)

let test_breaker_disabled () =
  let b = Breaker.make ~threshold:0 ~cooldown:1 () in
  for tick = 1 to 5 do
    ignore (Breaker.record_failure b ~tick)
  done;
  Alcotest.(check bool) "threshold 0 never trips" true (fst (Breaker.allow b ~tick:6));
  Alcotest.(check int) "no trips" 0 (Breaker.trips b)

(* --- Admission -------------------------------------------------------- *)

let test_admission_slots_and_queue () =
  let a = Admission.make ~max_live:2 ~queue_capacity:2 in
  Alcotest.(check bool) "has capacity" true (Admission.has_capacity a);
  Admission.claim a;
  Admission.claim a;
  Alcotest.(check bool) "full" false (Admission.has_capacity a);
  Alcotest.(check bool) "enqueue 10" true (Admission.enqueue a 10);
  Alcotest.(check bool) "enqueue 11" true (Admission.enqueue a 11);
  Alcotest.(check bool) "queue full sheds" false (Admission.enqueue a 12);
  Alcotest.(check int) "one shed" 1 (Admission.shed_count a);
  Alcotest.(check int) "two queued" 2 (Admission.queued a);
  Admission.release a;
  Alcotest.(check bool) "slot freed" true (Admission.has_capacity a);
  Alcotest.(check (option int)) "fifo head" (Some 10) (Admission.peek_queued a);
  Alcotest.(check int) "pop head" 10 (Admission.pop_queued a);
  Alcotest.(check (option int)) "next head" (Some 11) (Admission.peek_queued a)

let test_admission_validation () =
  Alcotest.check_raises "max_live 0"
    (Invalid_argument "Admission.make: max_live must be >= 1") (fun () ->
      ignore (Admission.make ~max_live:0 ~queue_capacity:1));
  let a = Admission.make ~max_live:1 ~queue_capacity:0 in
  Admission.claim a;
  Alcotest.check_raises "claim past capacity"
    (Invalid_argument "Admission.claim: live set full") (fun () ->
      Admission.claim a)

(* --- Chaos ------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let chaos_of spec =
  match Chaos.of_string ~alphabet:4 spec with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let test_chaos_parse_and_target () =
  let c = chaos_of "kill@2,5%3=1;crash:10@1..50;burst:0.5@1..20%2=0" in
  Alcotest.(check int) "three directives" 3 (List.length (Chaos.directives c));
  Alcotest.(check bool) "kills its target" true (Chaos.kills_at c ~tick:2 ~id:4);
  Alcotest.(check bool) "and at the later tick" true (Chaos.kills_at c ~tick:5 ~id:7);
  Alcotest.(check bool) "not off-tick" false (Chaos.kills_at c ~tick:3 ~id:4);
  Alcotest.(check bool) "not off-target" false (Chaos.kills_at c ~tick:2 ~id:3);
  (* storm stacks compose per target: id 0 gets crash+burst, id 1 crash only *)
  let name id = Goalcom_faults.Fault.name (Chaos.stack_for c ~id) in
  Alcotest.(check bool) "id 0 gets burst" true (contains (name 0) "burstwin");
  Alcotest.(check bool) "id 1 does not" false (contains (name 1) "burstwin")

let test_chaos_parse_errors () =
  let err spec =
    match Chaos.of_string ~alphabet:4 spec with
    | Ok _ -> Alcotest.failf "%S parsed" spec
    | Error e -> e
  in
  Alcotest.(check bool) "unknown directive named" true
    (contains (err "explode@3") "unknown chaos directive \"explode\"");
  Alcotest.(check bool) "grammar listed" true (contains (err "explode@3") "kill@T1,T2");
  Alcotest.(check bool) "bad window" true
    (contains (err "crash:5@9..2") "window wants 1 <= LO <= HI");
  Alcotest.(check bool) "bad target" true
    (contains (err "kill@2%5=9") "0 <= R < M");
  Alcotest.(check bool) "bad probability" true
    (contains (err "burst:1.5@1..10") "P in [0,1]");
  Alcotest.(check bool) "bad embedded fault stack" true
    (contains (err "fault:bogus:1") "unknown fault")

(* --- Engine ----------------------------------------------------------- *)

(* Tiny standard mix (printing / corridor / open maze) from the E18
   harness, small enough for unit tests. *)
let mix n = E18_chaos_matrix.specs ~sessions:n ()

let test_engine_all_complete () =
  let r = Engine.run ~specs:(mix 12) ~seed:3 () in
  Alcotest.(check int) "all done" 12 r.Engine.completed;
  Alcotest.(check int) "no shed" 0 r.Engine.shed;
  Alcotest.(check int) "no restarts" 0 r.Engine.restarts;
  Array.iter
    (function
      | Engine.Done _ -> ()
      | _ -> Alcotest.fail "non-Done outcome in a calm run")
    r.Engine.outcomes

let test_engine_sheds_overflow () =
  let config = Engine.config ~max_live:1 ~queue_capacity:1 () in
  let r = Engine.run ~config ~specs:(mix 4) ~seed:3 () in
  Alcotest.(check int) "two shed" 2 r.Engine.shed;
  Alcotest.(check int) "two done" 2 r.Engine.completed;
  Alcotest.(check bool) "sheds are terminal" true
    (Array.to_list r.Engine.outcomes
    |> List.filter (fun o -> o = Engine.Shed)
    |> List.length = 2)

let test_engine_adversary_gives_up () =
  let chaos = chaos_of "fault:adversary:999999" in
  let config =
    Engine.config ~round_budget:200 ~breaker_threshold:2
      ~policy:(Policy.make ~max_restarts:1 ~jitter:0.0 ())
      ()
  in
  let r = Engine.run ~chaos ~config ~specs:(mix 3) ~seed:3 () in
  Alcotest.(check int) "all give up" 3 r.Engine.gave_up;
  Alcotest.(check bool) "restarts happened" true (r.Engine.restarts > 0);
  Alcotest.(check bool) "breaker tripped" true (r.Engine.trips > 0)

let test_engine_deadline () =
  let chaos = chaos_of "fault:adversary:999999" in
  let config =
    Engine.config ~deadline:3 ~round_budget:1_000_000
      ~policy:(Policy.make ~max_restarts:1000 ())
      ()
  in
  let r = Engine.run ~chaos ~config ~specs:(mix 2) ~seed:3 () in
  Alcotest.(check int) "deadlines fire" 2 r.Engine.deadlines

let chaos_spec_small = "kill@2%2=0;crash:20@1..200%3=1"

let run_small ~jobs ~seed =
  let chaos = chaos_of chaos_spec_small in
  let config = Engine.config ~quantum:16 ~max_live:8 () in
  Engine.run ~chaos ~config ~jobs ~specs:(mix 20) ~seed ()

let test_engine_deterministic_across_jobs () =
  let record jobs =
    let buf = ref [] in
    let r =
      Trace.with_sink (fun ev -> buf := ev :: !buf) (fun () -> run_small ~jobs ~seed:5)
    in
    (r.Engine.digest, List.rev !buf)
  in
  let d1, t1 = record 1 in
  List.iter
    (fun jobs ->
      let d, t = record jobs in
      Alcotest.(check string) (Printf.sprintf "digest jobs=%d" jobs) d1 d;
      Alcotest.(check bool) (Printf.sprintf "merged trace jobs=%d" jobs) true (t = t1))
    [ 2; 4 ];
  match Trace.check Trace.standard t1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "merged trace invariant: %s" msg

let test_engine_deterministic_across_repeats () =
  let r1 = run_small ~jobs:2 ~seed:9 in
  let r2 = run_small ~jobs:2 ~seed:9 in
  Alcotest.(check string) "digest" r1.Engine.digest r2.Engine.digest;
  Alcotest.(check bool) "outcomes" true (r1.Engine.outcomes = r2.Engine.outcomes)

(* --- qcheck: crash-restart equivalence (satellite) --------------------

   A supervised session interrupted by chaos kills (a
   helpfulness-preserving fault schedule: the server is untouched, only
   incarnations die) reaches the same goal state — digest-identical
   final world view — as the uninterrupted run, for jobs 1, 2 and 4.
   Restart costs differ; the achieved state must not. *)

let final_state (r : Engine.report) =
  match r.Engine.outcomes.(0) with
  | Engine.Done { state; _ } -> Some state
  | _ -> None

let prop_crash_restart_reaches_same_state =
  QCheck.Test.make ~count:12 ~name:"Engine: killed+restarted = uninterrupted (jobs 1/2/4)"
    QCheck.(pair (int_bound 2) (pair (1 -- 4) (1 -- 4)))
    (fun (family, (k1, k2)) ->
      (* one session of the chosen family: mix order is printing,
         corridor, open-room *)
      let specs = [| E18_chaos_matrix.specs ~sessions:3 () |].(0).(family) in
      let specs = [| specs |] in
      let config =
        Engine.config ~quantum:8
          ~policy:(Policy.make ~max_restarts:50 ~backoff_max:2 ())
          ()
      in
      let baseline = Engine.run ~config ~specs ~seed:21 () in
      let chaos =
        chaos_of (Printf.sprintf "kill@%d,%d" (1 + k1) (1 + k1 + k2))
      in
      match final_state baseline with
      | None -> QCheck.Test.fail_report "baseline did not complete"
      | Some state ->
          List.for_all
            (fun jobs ->
              final_state (Engine.run ~chaos ~config ~jobs ~specs ~seed:21 ())
              = Some state)
            [ 1; 2; 4 ])

let suite =
  [
    ("policy gives up", `Quick, test_policy_gives_up);
    ("policy backoff growth", `Quick, test_policy_backoff_growth);
    ("policy jitter deterministic", `Quick, test_policy_backoff_jitter_deterministic);
    ("breaker lifecycle", `Quick, test_breaker_lifecycle);
    ("breaker probe failure reopens", `Quick, test_breaker_probe_failure_reopens);
    ("breaker success resets streak", `Quick, test_breaker_success_resets_consecutive);
    ("breaker disabled", `Quick, test_breaker_disabled);
    ("admission slots and queue", `Quick, test_admission_slots_and_queue);
    ("admission validation", `Quick, test_admission_validation);
    ("chaos parse and targets", `Quick, test_chaos_parse_and_target);
    ("chaos parse errors", `Quick, test_chaos_parse_errors);
    ("engine calm run completes", `Quick, test_engine_all_complete);
    ("engine sheds overflow", `Quick, test_engine_sheds_overflow);
    ("engine adversary gives up", `Quick, test_engine_adversary_gives_up);
    ("engine deadline", `Quick, test_engine_deadline);
    ("engine deterministic across jobs", `Quick, test_engine_deterministic_across_jobs);
    ("engine deterministic across repeats", `Quick, test_engine_deterministic_across_repeats);
    QCheck_alcotest.to_alcotest prop_crash_restart_reaches_same_state;
  ]

let () = Alcotest.run "session" [ ("session", suite) ]
