lib/core/strategy.ml: Goalcom_prelude Io Printf Rng
