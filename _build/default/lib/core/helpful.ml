open Goalcom_prelude
open Goalcom_automata

type verdict = { helpful : bool; witness : int option; examined : int }

let candidate_succeeds ?config ?tail_window ~trials ~min_success ~goal ~server
    user rng =
  let worlds = Listx.range 0 (Goal.num_worlds goal) in
  let successes = ref 0 and total = ref 0 in
  List.iter
    (fun world_choice ->
      let config =
        match config with
        | Some c -> Exec.{ c with world_choice }
        | None -> Exec.config ~world_choice ()
      in
      for _ = 1 to trials do
        incr total;
        let trial_rng = Rng.split rng in
        let outcome, _ =
          Exec.run_outcome ~config ?tail_window ~goal ~user ~server trial_rng
        in
        if outcome.Outcome.achieved then incr successes
      done)
    worlds;
  float_of_int !successes /. float_of_int !total >= min_success

let check ?config ?tail_window ?(trials = 3) ?(min_success = 1.0)
    ?(search_limit = 200) ~goal ~user_class ~server rng =
  let stop =
    match Enum.cardinality user_class with
    | Some c -> min c search_limit
    | None -> search_limit
  in
  let rec go i =
    if i >= stop then { helpful = false; witness = None; examined = i }
    else begin
      match Enum.get user_class i with
      | None -> { helpful = false; witness = None; examined = i }
      | Some user ->
          if
            candidate_succeeds ?config ?tail_window ~trials ~min_success ~goal
              ~server user rng
          then { helpful = true; witness = Some i; examined = i + 1 }
          else go (i + 1)
    end
  in
  go 0

let is_helpful ?config ?tail_window ?trials ?min_success ?search_limit ~goal
    ~user_class ~server rng =
  (check ?config ?tail_window ?trials ?min_success ?search_limit ~goal
     ~user_class ~server rng)
    .helpful
