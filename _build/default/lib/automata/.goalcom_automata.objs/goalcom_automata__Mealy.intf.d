lib/automata/mealy.mli: Enum Format
