(** E18 — chaos matrix: goal completion under supervised concurrency.

    Runs a mixed population of checkpointed universal sessions
    (printing, corridor maze, open-room maze) through
    {!Goalcom_session.Engine} under a set of chaos conditions — crash
    storms, burst loss, adversarial budgets, admission overload — and
    tabulates completion rate, supervision costs and rounds-to-goal
    percentiles.  Deterministic: each cell's digest is identical
    across repeats and jobs counts.

    The building blocks ([specs], [conditions], [run_condition]) are
    exposed for the bench harness and the [goalcom chaos] CLI, which
    run single conditions at other population sizes. *)

open Goalcom_prelude

val title : string
val claim : string

val specs : sessions:int -> Goalcom_session.Engine.spec array
(** The standard mix: session [i] is printing / corridor maze /
    open-room maze by [i mod 3], with server dialects cycled within
    each family. *)

type condition = {
  cname : string;
  chaos_spec : string;  (** {!Goalcom_session.Chaos.of_string} grammar *)
  econfig : Goalcom_session.Engine.config;
}

val conditions : unit -> condition list

val chaos_of : string -> Goalcom_session.Chaos.t
(** Parse against the mix's channel alphabet.
    @raise Invalid_argument on a bad spec. *)

val run_condition :
  ?jobs:int ->
  sessions:int ->
  seed:int ->
  condition ->
  Goalcom_session.Engine.report

val sessions_default : unit -> int
(** Sessions per condition: [GOALCOM_E18_SESSIONS], default 2000. *)

val run : seed:int -> Table.t
