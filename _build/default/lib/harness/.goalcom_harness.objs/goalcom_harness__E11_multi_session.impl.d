lib/harness/e11_multi_session.ml: Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude List Listx Multi_session Outcome Printf Printing Rng Table Universal
