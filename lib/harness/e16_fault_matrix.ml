(* E16 — the fault matrix: universality is robust.  A faulted server is
   just another server (Fault.apply composes strategy transformers), so
   Theorem 1 should keep holding as long as some helpful behaviour
   survives the faults: the universal user matches the dialect-informed
   oracle on every recoverable fault stack, while a fixed-protocol user
   keeps failing on foreign dialects, faults or no faults.  An
   unbounded adversary starves the link for the whole run — no server
   in the class is helpful through it, and nobody wins; safety (never
   halting on an unachieved goal) must survive even that. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_faults

let title = "Fault matrix: universal vs. oracle vs. fixed under fault stacks"

let claim =
  "faulted servers are still servers: with safe+viable sensing the \
   universal user matches the informed oracle on every recoverable \
   fault stack (message corruption, reordering, bursty loss, crashes, \
   outages, and their compositions) and stays safe even on fatal ones"

let alphabet = 4
let doc = [ 4; 2 ]
let trials = 2
let dialect_indices = [ 0; 2 ]

let delegation_params =
  Delegation.{ num_vars = 5; num_clauses = 12; clause_len = 3 }

type stack_spec = { spec : string; recoverable : bool }

let stacks =
  [
    { spec = "nop"; recoverable = true };
    { spec = "corrupt:0.05"; recoverable = true };
    { spec = "reorder:2"; recoverable = true };
    { spec = "burst:0.10,0.30,0.90"; recoverable = true };
    { spec = "crash:60"; recoverable = true };
    { spec = "intermittent:20,5"; recoverable = true };
    { spec = "delay:1+dup"; recoverable = true };
    { spec = "corrupt:0.05+crash:60"; recoverable = true };
    { spec = "adversary:12"; recoverable = true };
    { spec = "adversary:999999"; recoverable = false };
  ]

type row = {
  goal_name : string;
  spec : string;
  recoverable : bool;
  universal_rate : float;
  universal_rounds : float;
  oracle_rate : float;
  fixed_rate : float;
  unsafe_halts : int;
}

(* One goal's cast of characters, dialect-indexed where it matters. *)
type scenario = {
  scenario_name : string;
  goal : Goal.t;
  config : Exec.config;
  server_of : int -> Strategy.server;
  universal : unit -> Strategy.user;
  oracle_of : int -> Strategy.user;
  fixed : unit -> Strategy.user;
}

let printing_scenario () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let users = Printing.user_class ~alphabet dialects in
  (* Levin gives the last candidate a budget only after work_before
     rounds; faults (crashes every 60 rounds, outages, bursts) stretch
     sessions, so allow several extra enumeration passes. *)
  let session = (2 * List.length doc) + 14 in
  let horizon =
    (8 * Levin.work_before ~index:(alphabet - 1) ~budget:session ()) + 4_000
  in
  {
    scenario_name = "printing";
    goal = Printing.goal ~docs:[ doc ] ~alphabet ();
    config = Exec.config ~horizon ();
    server_of = (fun i -> Printing.server ~alphabet (Enum.get_exn dialects i));
    universal = (fun () -> Printing.universal_user ~alphabet dialects);
    oracle_of =
      (fun i -> Printing.informed_user ~alphabet (Enum.get_exn dialects i));
    fixed = (fun () -> Goalcom_baselines.Baselines.fixed users);
  }

let delegation_scenario () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let users = Delegation.user_class ~alphabet dialects in
  {
    scenario_name = "delegation";
    goal = Delegation.goal ~params:delegation_params ~alphabet ();
    config = Exec.config ~horizon:8_000 ();
    server_of =
      (fun i -> Delegation.server ~alphabet (Enum.get_exn dialects i));
    universal = (fun () -> Delegation.universal_user ~alphabet dialects);
    oracle_of =
      (fun i -> Delegation.informed_user ~alphabet (Enum.get_exn dialects i));
    fixed = (fun () -> Goalcom_baselines.Baselines.fixed users);
  }

let fault_of_spec spec =
  match Fault.stack_of_string ~alphabet spec with
  | Ok f -> f
  | Error e -> invalid_arg ("E16_fault_matrix: " ^ e)

(* Mean success rate (and rounds, and unsafe halts) of [user_of] over
   the sampled dialects, against [fault]-wrapped servers. *)
let measure ~seed scenario fault user_of =
  let results =
    List.map
      (fun i ->
        Trial.run ~config:scenario.config ~trials ~seed:(seed + (10 * i))
          ~goal:scenario.goal ~user:(user_of i)
          ~server:(Fault.apply fault (scenario.server_of i))
          ())
      dialect_indices
  in
  let rate =
    Stats.mean (List.map (fun (r : Trial.result) -> r.Trial.success_rate) results)
  in
  let rounds =
    List.concat_map (fun (r : Trial.result) -> r.Trial.rounds_to_success) results
  in
  let unsafe =
    List.fold_left (fun acc (r : Trial.result) -> acc + r.Trial.unsafe_halts) 0 results
  in
  (rate, (if rounds = [] then Float.nan else Stats.mean rounds), unsafe)

let row_of ~seed scenario (stack : stack_spec) =
  let fault = fault_of_spec stack.spec in
  let u_rate, u_rounds, u_unsafe =
    measure ~seed scenario fault (fun _ -> scenario.universal ())
  in
  let o_rate, _, o_unsafe =
    measure ~seed:(seed + 1_000) scenario fault scenario.oracle_of
  in
  let f_rate, _, f_unsafe =
    measure ~seed:(seed + 2_000) scenario fault (fun _ -> scenario.fixed ())
  in
  {
    goal_name = scenario.scenario_name;
    spec = stack.spec;
    recoverable = stack.recoverable;
    universal_rate = u_rate;
    universal_rounds = u_rounds;
    oracle_rate = o_rate;
    fixed_rate = f_rate;
    unsafe_halts = u_unsafe + o_unsafe + f_unsafe;
  }

let rows ~seed =
  List.concat_map
    (fun scenario ->
      List.mapi
        (fun k stack -> row_of ~seed:(seed + (100 * k)) scenario stack)
        stacks)
    [ printing_scenario (); delegation_scenario () ]

let run ~seed =
  let cells =
    List.map
      (fun r ->
        [
          r.goal_name;
          r.spec;
          (if r.recoverable then "recoverable" else "fatal");
          Table.cell_pct r.universal_rate;
          Table.cell_float r.universal_rounds;
          Table.cell_pct r.oracle_rate;
          Table.cell_pct r.fixed_rate;
          Table.cell_int r.unsafe_halts;
        ])
      (rows ~seed)
  in
  Table.make
    ~title:
      "E16: success under fault stacks (universal vs. dialect oracle vs. \
       fixed protocol)"
    ~columns:
      [
        "goal";
        "fault stack";
        "class";
        "universal ok";
        "universal rounds";
        "oracle ok";
        "fixed ok";
        "unsafe halts";
      ]
    ~notes:
      [
        "fault stacks wrap the server (outermost fault first); servers are \
         sampled at dialect indices 0 and 2 of the rotation class";
        "expected shape: universal matches the oracle on every recoverable \
         stack and beats fixed off the canonical dialect; the unbounded \
         adversary defeats everyone; unsafe halts stay 0 throughout \
         (sensing safety survives faults)";
      ]
    cells
