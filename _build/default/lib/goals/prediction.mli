(** The prediction goal — online learning as a compact goal.

    The paper closes by pointing at follow-up work in which "semantic
    communication for simple goals is equivalent to on-line learning"
    (Juba–Vempala).  This module realises that correspondence inside
    the model: the {b world} draws a secret parity concept S over n
    boolean attributes, announces a random instance each round, and
    scores the user's prediction of the instance's label.  The referee
    is compact: a prefix is unacceptable iff a prediction was scored
    wrong that round — so achieving the goal means making only
    {e finitely many mistakes}, the classic mistake-bound criterion.

    Two very different user strategies achieve it:
    - {!teacher_user}: asks the {b server} (a teacher who can see the
      concept) for S, in the server's dialect, then predicts exactly;
    - {!learner_user}: ignores the server entirely and runs a
      version-space (halving) learner over the 2^n parities — at most n
      mistakes, no common language required.

    Putting both in one enumerated class and handing it to
    {!Universal.compact} shows the theory's indifference to {e how} a
    strategy achieves the goal — learning and asking are
    interchangeable members of the class.

    Wire protocol.  World → user:
    [Pair (new_instance, feedback)] where [new_instance] is a 0/1
    sequence of length n and [feedback] is [Silence] (nothing scored
    yet) or [Pair (Pair (Int verdict, Int label), scored_instance)].
    World → server: the concept (a 0/1 sequence — the teacher can see
    the world's state).  User → world: [Int bit] predictions.
    World state view: [Int 1] (no mistake this round) / [Int 0]. *)

open Goalcom
open Goalcom_automata

val ask_cmd : int

val min_alphabet : int
(** 2: ASK plus at least one pad. *)

type params = { num_attributes : int }

val default_params : params
(** [{ num_attributes = 6 }] — a 64-concept class. *)

val teacher : alphabet:int -> Strategy.server
(** Replies to a (canonical) ASK with the concept it last saw from the
    world. *)

val server : alphabet:int -> Dialect.t -> Strategy.server
val server_class : alphabet:int -> Dialect.t Enum.t -> Strategy.server Enum.t

val world : ?params:params -> unit -> World.t
val goal : ?params:params -> alphabet:int -> unit -> Goal.t

val teacher_user : ?params:params -> alphabet:int -> Dialect.t -> Strategy.user
(** Asks for the concept (re-asking with patience), then predicts
    exactly; predicts 0 while waiting. *)

val learner_user : ?params:params -> unit -> Strategy.user
(** The halving learner: maintains the version space of consistent
    parities, predicts by majority vote, eliminates on every revealed
    label.  Makes at most [num_attributes] mistakes once feedback
    flows, and never talks to the server. *)

val user_class :
  ?params:params -> alphabet:int -> Dialect.t Enum.t -> Strategy.user Enum.t
(** The teacher-users for every candidate dialect, with the lone
    {!learner_user} appended at the end. *)

val sensing : Sensing.t
(** Negative iff the latest feedback scored a mistake. *)

val universal_user :
  ?grace:int ->
  ?stats:Universal.stats ->
  ?params:params ->
  alphabet:int ->
  Dialect.t Enum.t ->
  Strategy.user

val mistakes : History.t -> int
(** Total scored mistakes in a run (the mistake-bound statistic). *)
