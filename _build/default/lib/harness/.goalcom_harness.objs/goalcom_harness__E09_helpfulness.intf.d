lib/harness/e09_helpfulness.mli: Goalcom_prelude
