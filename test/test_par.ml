(* Tests for lib/par and the parallel entry points built on it:
   pool internals (work stealing, exception propagation, reuse),
   Trial.run_par's bit-identical contract (qcheck, field for field),
   the domain-local trace-sink guard, Metrics.merge, merged parallel
   traces against Trace's invariants, and the Levin racer's winner
   agreement with the sequential universal construction. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_harness
module Pool = Goalcom_par.Pool

(* --- pool internals ------------------------------------------------ *)

let test_pool_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      let squares = Pool.map_array pool (fun i -> i * i) xs in
      Alcotest.(check (array int)) "task-order results"
        (Array.map (fun i -> i * i) xs)
        squares)

let test_pool_skewed () =
  (* Wildly uneven task costs: the early chunks hold all the slow
     tasks, so idle participants must steal to finish in time.  The
     assertion is on order, which completion order must never leak
     into. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let results =
        Pool.map_list pool
          (fun i ->
            if i < 4 then Unix.sleepf 0.02;
            i)
          (List.init 32 Fun.id)
      in
      Alcotest.(check (list int)) "order despite skew" (List.init 32 Fun.id)
        results)

exception Boom of int

let test_pool_exception () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.check_raises "task exception re-raised" (Boom 13) (fun () ->
          ignore
            (Pool.run pool
               (Array.init 24 (fun i () ->
                    if i = 13 then raise (Boom 13) else i))));
      (* A failed batch must not poison the pool. *)
      let after = Pool.map_list pool (fun i -> i + 1) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "pool reusable after failure" [ 2; 3; 4 ]
        after)

let test_pool_sequential_width () =
  (* jobs = 1 is the exact sequential path: no domains, index order. *)
  let trace = ref [] in
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "width" 1 (Pool.jobs pool);
      let results =
        Pool.run pool
          (Array.init 8 (fun i () ->
               trace := i :: !trace;
               i))
      in
      Alcotest.(check (array int)) "results" (Array.init 8 Fun.id) results);
  Alcotest.(check (list int)) "index execution order" (List.init 8 Fun.id)
    (List.rev !trace)

let test_pool_shutdown () =
  let pool = Pool.create ~jobs:2 in
  Alcotest.(check int) "jobs" 2 (Pool.jobs pool);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  let raised =
    try
      ignore (Pool.run pool [| (fun () -> ()) |]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "run after shutdown rejected" true raised

let test_pool_validation () =
  let invalid f = try f () |> ignore; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "create ~jobs:0" true
    (invalid (fun () -> Pool.create ~jobs:0));
  Alcotest.(check bool) "set_default_jobs 0" true
    (invalid (fun () -> Pool.set_default_jobs 0))

let test_default_jobs () =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      Pool.set_default_jobs 3;
      Alcotest.(check int) "set wins" 3 (Pool.default_jobs ()))

(* --- Trial.run_par ------------------------------------------------- *)

(* The toy goal from the Trial tests: flaky succeeds with probability
   1/2 per run, so both successes and failures (and the RNG) are
   exercised. *)
let world =
  World.make ~name:"w"
    ~init:(fun () -> false)
    ~step:(fun _rng got (obs : Io.World.obs) ->
      let got = got || obs.from_user = Msg.Int 1 in
      (got, Io.World.say_user (Msg.Text (if got then "done" else "waiting"))))
    ~view:(fun got -> Msg.Text (if got then "done" else "waiting"))

let goal =
  Goal.make ~name:"toy" ~worlds:[ world ]
    ~referee:(Referee.finite "done" (fun views -> List.mem (Msg.Text "done") views))

let flaky =
  Strategy.make ~name:"flaky"
    ~init:(fun () -> `Undecided)
    ~step:(fun rng state (obs : Io.User.obs) ->
      if obs.from_world = Msg.Text "done" then (state, Io.User.halt_act)
      else begin
        match state with
        | `Undecided ->
            if Rng.bool rng then (`Win, Io.User.say_world (Msg.Int 1))
            else (`Lose, Io.User.silent)
        | `Win -> (`Win, Io.User.say_world (Msg.Int 1))
        | `Lose -> (`Lose, Io.User.silent)
      end)

let idle_server =
  Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let config = Exec.config ~horizon:30 ()

let prop_run_par_matches_run =
  QCheck.Test.make ~count:20
    ~name:"Trial.run_par ~jobs:k = Trial.run, field for field (k in 1,2,4,8)"
    QCheck.(pair (1 -- 10) (int_bound 10_000))
    (fun (trials, seed) ->
      let reference =
        Trial.run ~config ~trials ~seed ~goal ~user:flaky ~server:idle_server ()
      in
      List.for_all
        (fun jobs ->
          Trial.equal reference
            (Trial.run_par ~config ~jobs ~trials ~seed ~goal ~user:flaky
               ~server:idle_server ()))
        [ 1; 2; 4; 8 ])

let test_run_par_metrics () =
  let seq =
    Trial.run ~config ~collect_metrics:true ~trials:6 ~seed:5 ~goal ~user:flaky
      ~server:idle_server ()
  in
  let par =
    Trial.run_par ~config ~collect_metrics:true ~jobs:4 ~trials:6 ~seed:5 ~goal
      ~user:flaky ~server:idle_server ()
  in
  Alcotest.(check bool) "results equal" true (Trial.equal seq par);
  Alcotest.(check bool) "clockless metrics equal" true
    (seq.Trial.metrics = par.Trial.metrics && seq.Trial.metrics <> None)

let test_run_par_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun seed ->
          let seq =
            Trial.run ~config ~trials:7 ~seed ~goal ~user:flaky
              ~server:idle_server ()
          in
          let par =
            Trial.run_par ~config ~pool ~trials:7 ~seed ~goal ~user:flaky
              ~server:idle_server ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d across a reused pool" seed)
            true (Trial.equal seq par))
        [ 11; 12; 13 ])

(* --- the domain-local sink guard ----------------------------------- *)

let test_sink_guard () =
  (* While a multi-domain batch is in flight, a domain that is not a
     batch participant must not install an ambient sink (the events it
     would capture belong to per-trial recorders).  Participants and
     idle-time installs stay legal. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let started = Atomic.make false in
      let release = Atomic.make false in
      let verdict = Atomic.make `Pending in
      let foreign =
        Domain.spawn (fun () ->
            while not (Atomic.get started) do
              Domain.cpu_relax ()
            done;
            let outcome =
              try
                Trace.set_sink (Some Trace.null);
                `No_raise
              with
              | Invalid_argument _ -> `Raised
              | _ -> `Other
            in
            Atomic.set verdict outcome;
            Atomic.set release true)
      in
      ignore
        (Pool.run pool
           (Array.init 2 (fun _ () ->
                Atomic.set started true;
                while not (Atomic.get release) do
                  Domain.cpu_relax ()
                done)));
      Domain.join foreign;
      Alcotest.(check bool) "foreign install rejected mid-batch" true
        (Atomic.get verdict = `Raised));
  (* Once the batch has drained, installs work again. *)
  Trace.set_sink (Some Trace.null);
  Trace.set_sink None

(* --- Metrics.merge ------------------------------------------------- *)

let test_metrics_merge () =
  let module Metrics = Goalcom_obs.Metrics in
  let run_into m seed =
    ignore
      (Exec.run ~sink:(Metrics.sink m) ~config ~goal ~user:flaky
         ~server:idle_server (Rng.make seed))
  in
  let combined = Metrics.create () in
  run_into combined 1;
  run_into combined 2;
  let a = Metrics.create () in
  let b = Metrics.create () in
  run_into a 1;
  run_into b 2;
  Metrics.merge ~into:a b;
  Alcotest.(check bool) "merge = shared observation (clockless)" true
    (Metrics.summary a = Metrics.summary combined)

(* --- merged parallel traces ---------------------------------------- *)

let printing_alphabet = 4
let printing_dialects = Dialect.enumerate_rotations ~size:printing_alphabet
let printing_goal = Printing.goal ~docs:[ [ 3; 1; 4 ] ] ~alphabet:printing_alphabet ()

let printing_server =
  Printing.server ~alphabet:printing_alphabet (Enum.get_exn printing_dialects 2)

let test_parallel_trace_golden () =
  let module Obs = Goalcom_obs in
  let config = Exec.config ~horizon:500 () in
  let record run =
    let r = Obs.Recorder.create () in
    run ~sink:(Obs.Recorder.sink r);
    Obs.Recorder.events r
  in
  let user () = Printing.universal_user ~alphabet:printing_alphabet printing_dialects in
  let seq =
    record (fun ~sink ->
        ignore
          (Trial.run ~config ~sink ~trials:6 ~seed:3 ~goal:printing_goal
             ~user:(user ()) ~server:printing_server ()))
  in
  let par =
    record (fun ~sink ->
        ignore
          (Trial.run_par ~config ~sink ~jobs:4 ~trials:6 ~seed:3
             ~goal:printing_goal ~user:(user ()) ~server:printing_server ()))
  in
  Alcotest.(check bool) "trace non-empty" true (seq <> []);
  (match Obs.Trace_diff.events seq par with
  | None -> ()
  | Some d ->
      Alcotest.failf "parallel trace diverges from sequential:\n%s"
        (Obs.Trace_diff.to_string ~left_label:"sequential"
           ~right_label:"parallel" d));
  (match Trace.check Trace.standard par with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged trace breaks invariants: %s" e);
  Alcotest.(check int) "one run per trial" 6
    (List.length (Trace.split_runs par))

(* --- the Levin racer ----------------------------------------------- *)

(* A 1-cell-wide corridor: a wrong-rotation dialect cannot move the
   agent off the start cell (only one rotation maps the BFS-planned
   direction to a traversable one), so exactly one candidate ever
   senses positive — which makes the sequential winner provably equal
   to the racer's minimal-positive-slot winner. *)
let corridor =
  Maze.scenario
    ~blocked:[ (0, 1); (1, 1); (2, 1); (3, 1); (0, 2); (1, 2) ]
    ~width:5 ~height:3 ~start:(0, 0) ~target:(2, 2) ()

let maze_alphabet = 6
let maze_dialects = Dialect.enumerate_rotations ~size:maze_alphabet
let corridor_goal = Maze.goal ~scenarios:[ corridor ] ~alphabet:maze_alphabet ()

let corridor_enum =
  Maze.user_class ~alphabet:maze_alphabet ~scenario:corridor maze_dialects

let race_schedule () = Levin.round_robin ~budget:32 ~width:maze_alphabet ()

let sequential_winner ~server ~seed =
  let stats = Universal.new_stats () in
  let user =
    Maze.universal_user ~schedule:(race_schedule ()) ~stats
      ~alphabet:maze_alphabet ~scenario:corridor maze_dialects
  in
  ignore
    (Exec.run
       ~config:(Exec.config ~horizon:400 ())
       ~goal:corridor_goal ~user ~server (Rng.make seed));
  stats.Universal.current_index

let test_race_matches_sequential () =
  List.iter
    (fun dialect_idx ->
      let server =
        Maze.server ~alphabet:maze_alphabet
          (Enum.get_exn maze_dialects dialect_idx)
      in
      List.iter
        (fun seed ->
          let expected = sequential_winner ~server ~seed in
          List.iter
            (fun jobs ->
              match
                Universal.finite_par ~schedule:(race_schedule ())
                  ~max_slots:maze_alphabet ~jobs ~enum:corridor_enum
                  ~sensing:Maze.sensing ~goal:corridor_goal ~server ~seed ()
              with
              | None ->
                  Alcotest.failf "server %d seed %d jobs %d: no winner"
                    dialect_idx seed jobs
              | Some r ->
                  Alcotest.(check int)
                    (Printf.sprintf "server %d seed %d jobs %d" dialect_idx
                       seed jobs)
                    expected r.Universal.winner_index)
            [ 1; 2; 4 ])
        [ 1; 7 ])
    [ 0; 1; 2; 3; 4; 5 ]

let test_race_jobs_independent () =
  (* Under the default geometric Levin schedule the winner (and its
     whole history) must still be independent of the domain count. *)
  let server = Maze.server ~alphabet:maze_alphabet (Enum.get_exn maze_dialects 2) in
  let race jobs =
    Universal.finite_par ~jobs ~enum:corridor_enum ~sensing:Maze.sensing
      ~goal:corridor_goal ~server ~seed:5 ()
  in
  match race 1 with
  | None -> Alcotest.fail "no winner at jobs 1"
  | Some base ->
      List.iter
        (fun jobs ->
          match race jobs with
          | None -> Alcotest.failf "no winner at jobs %d" jobs
          | Some r ->
              Alcotest.(check (list int))
                (Printf.sprintf "winner fields at jobs %d" jobs)
                [
                  base.Universal.winner_slot; base.Universal.winner_index;
                  base.Universal.winner_budget; base.Universal.winner_rounds;
                  History.length base.Universal.history;
                ]
                [
                  r.Universal.winner_slot; r.Universal.winner_index;
                  r.Universal.winner_budget; r.Universal.winner_rounds;
                  History.length r.Universal.history;
                ])
        [ 2; 4 ]

let test_race_no_winner () =
  (* A 2-round budget cannot walk the corridor, so no probe senses
     positive and the race reports None — at any width. *)
  let server = Maze.server ~alphabet:maze_alphabet (Enum.get_exn maze_dialects 1) in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "budget-starved race at jobs %d" jobs)
        true
        (Universal.finite_par
           ~schedule:(Levin.round_robin ~budget:2 ~width:maze_alphabet ())
           ~max_slots:maze_alphabet ~jobs ~enum:corridor_enum
           ~sensing:Maze.sensing ~goal:corridor_goal ~server ~seed:1 ()
        = None))
    [ 1; 4 ]

let test_race_validation () =
  let invalid f = try f () |> ignore; false with Invalid_argument _ -> true in
  let server = Maze.server ~alphabet:maze_alphabet (Enum.get_exn maze_dialects 1) in
  Alcotest.(check bool) "max_slots 0" true
    (invalid (fun () ->
         Universal.finite_par ~max_slots:0 ~enum:corridor_enum
           ~sensing:Maze.sensing ~goal:corridor_goal ~server ~seed:1 ()));
  Alcotest.(check bool) "jobs 0" true
    (invalid (fun () ->
         Universal.finite_par ~jobs:0 ~enum:corridor_enum ~sensing:Maze.sensing
           ~goal:corridor_goal ~server ~seed:1 ()))

(* --- Sweep --------------------------------------------------------- *)

let test_sweep_map () =
  let xs = List.init 20 Fun.id in
  let f i = i * 7 in
  Alcotest.(check (list int)) "parallel = sequential" (List.map f xs)
    (Sweep.map ~jobs:4 f xs);
  Alcotest.(check (list (pair int int))) "product row-major"
    [ (1, 10); (1, 20); (2, 10); (2, 20) ]
    (Sweep.product [ 1; 2 ] [ 10; 20 ])

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "order" `Quick test_pool_order;
          Alcotest.test_case "skewed costs steal" `Quick test_pool_skewed;
          Alcotest.test_case "exceptions" `Quick test_pool_exception;
          Alcotest.test_case "jobs=1 sequential" `Quick test_pool_sequential_width;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "validation" `Quick test_pool_validation;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
        ] );
      ( "trial",
        QCheck_alcotest.to_alcotest prop_run_par_matches_run
        :: [
             Alcotest.test_case "metrics merge equal" `Quick test_run_par_metrics;
             Alcotest.test_case "pool reuse" `Quick test_run_par_pool_reuse;
           ] );
      ( "trace",
        [
          Alcotest.test_case "foreign sink guard" `Quick test_sink_guard;
          Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
          Alcotest.test_case "parallel trace golden" `Quick
            test_parallel_trace_golden;
        ] );
      ( "race",
        [
          Alcotest.test_case "winner = sequential" `Quick
            test_race_matches_sequential;
          Alcotest.test_case "jobs independent" `Quick test_race_jobs_independent;
          Alcotest.test_case "no winner" `Quick test_race_no_winner;
          Alcotest.test_case "validation" `Quick test_race_validation;
        ] );
      ("sweep", [ Alcotest.test_case "map/product" `Quick test_sweep_map ]);
    ]
