(** Multi-session goals.

    The full version of the paper treats {e multi-session} goals: a
    finite goal played over and over, forever, where overall success
    means all but finitely many sessions succeed.  This is the natural
    bridge from finite to compact goals — and the setting in which the
    compact universal construction shines: early sessions fail while
    the enumeration explores, and once the right strategy is adopted
    every subsequent session passes.

    [goal ~session_length g] wraps a {e finite} goal [g]: each world of
    [g] is restarted every [session_length] rounds, the finite referee
    judges each completed session on that session's world views, and
    the compact referee deems a prefix unacceptable exactly when the
    most recently completed session failed.

    Wire protocol: the wrapped world prefixes its messages to the user
    (and its state views) with a session header
    [Pair (Pair (Int completed_sessions, Text flag), inner)], where
    flag is ["none"], ["pass"] or ["fail"].  {!wrap_user} strips the
    header, forwards the inner payload to a base-goal user, and
    restarts it at session boundaries; {!sensing} reports a negative
    indication exactly when a session has just completed with a
    failure — so the compact universal user switches at most once per
    failed session. *)

type flag = No_session_yet | Pass | Fail

val flag_to_string : flag -> string

val header_of_msg : Msg.t -> (int * flag * Msg.t) option
(** Decode [(completed_sessions, flag, inner_payload)] from a wrapped
    message. *)

val goal : session_length:int -> Goal.t -> Goal.t
(** @raise Invalid_argument if the inner goal is compact or
    [session_length <= 0]. *)

val wrap_user : Strategy.user -> Strategy.user
(** Adapt a base-goal user to the wrapped wire protocol: strip headers,
    restart the inner strategy whenever the completed-session counter
    changes, and suppress its halts (multi-session executions run
    forever). *)

val wrap_class :
  Strategy.user Goalcom_automata.Enum.t ->
  Strategy.user Goalcom_automata.Enum.t

val sensing : Sensing.t
(** Negative exactly on the round where a failed session's result first
    becomes visible. *)

val session_results : History.t -> bool list
(** The pass/fail outcome of every completed session, in order —
    the statistic experiments report. *)
