open Goalcom_prelude

type t =
  | W : {
      name : string;
      init : unit -> 'state;
      step : Rng.t -> 'state -> Io.World.obs -> 'state * Io.World.act;
      view : 'state -> Msg.t;
    }
      -> t

let make ~name ~init ~step ~view = W { name; init; step; view }
let name (W w) = w.name

module Instance = struct
  type instance =
    | I : {
        mutable state : 'state;
        step_fn : Rng.t -> 'state -> Io.World.obs -> 'state * Io.World.act;
        view_fn : 'state -> Msg.t;
      }
        -> instance

  type t = instance

  let create (W w) =
    I { state = w.init (); step_fn = w.step; view_fn = w.view }

  let step rng (I inst) obs =
    let state', act = inst.step_fn rng inst.state obs in
    inst.state <- state';
    act

  let view (I inst) = inst.view_fn inst.state
end
