(* Tests for the control goal: the compact-goal case of Theorem 1. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i
let goal = Control.goal ~alphabet ()

let run ~user ~server ?(horizon = 1500) seed =
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_informed_keeps_plant_in_range () =
  List.iter
    (fun i ->
      let user = Control.informed_user ~alphabet (dialect i) in
      let server = Control.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server (10 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d achieves" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_uncontrolled_plant_diverges () =
  let user =
    Strategy.stateless ~name:"idle" (fun (_ : Io.User.obs) -> Io.User.silent)
  in
  let server = Control.server ~alphabet (dialect 0) in
  let outcome, history = run ~user ~server 3 in
  Alcotest.(check bool) "fails" false outcome.Outcome.achieved;
  (* The drift pushes the plant to the stop; violations accumulate. *)
  Alcotest.(check bool) "many violations" true (outcome.Outcome.violations > 500);
  let final_view = Listx.last (History.world_views history) in
  (match final_view with
  | Msg.Int p -> Alcotest.(check bool) "plant at stop" true (abs p > 5)
  | _ -> Alcotest.fail "unexpected view")

let test_wrong_dialect_diverges () =
  let user = Control.informed_user ~alphabet (dialect 1) in
  let server = Control.server ~alphabet (dialect 0) in
  let outcome, _ = run ~user ~server 4 in
  Alcotest.(check bool) "fails" false outcome.Outcome.achieved

let test_universal_all_dialects () =
  List.iter
    (fun i ->
      let stats = Universal.new_stats () in
      let user = Control.universal_user ~stats ~alphabet dialects in
      let server = Control.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server ~horizon:3000 (40 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "universal vs dialect %d (settled idx %d, %d switches)"
           i stats.current_index stats.switches)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_universal_settles () =
  (* After achieving the goal the universal user should stop switching:
     violations (and hence negative indications) stop. *)
  let stats = Universal.new_stats () in
  let user = Control.universal_user ~stats ~alphabet dialects in
  let server = Control.server ~alphabet (dialect 2) in
  let outcome, history = run ~user ~server ~horizon:3000 5 in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved;
  let last_violation =
    match outcome.Outcome.last_violation with Some r -> r | None -> 0
  in
  Alcotest.(check bool) "violations stop early" true
    (last_violation < History.length history / 2)

let test_sensing_safe_and_viable () =
  let servers = Enum.to_list (Control.server_class ~alphabet dialects) in
  let users = Enum.to_list (Control.user_class ~alphabet dialects) in
  let sensing = Control.sensing () in
  let config = Exec.config ~horizon:1500 () in
  let safety =
    Sensing.check_safety_compact ~config ~goal ~users ~servers sensing
      (Rng.make 7)
  in
  Alcotest.(check bool) "safety" true safety.Sensing.holds;
  let user_for server =
    let idx =
      match
        Listx.find_index (fun s -> Strategy.name s = Strategy.name server) servers
      with
      | Some i -> i
      | None -> Alcotest.fail "unknown server"
    in
    Control.informed_user ~alphabet (dialect idx)
  in
  let viability =
    Sensing.check_viability_compact ~config ~goal ~user_for ~servers sensing
      (Rng.make 8)
  in
  Alcotest.(check bool) "viability" true viability.Sensing.holds

let test_params_validation () =
  Alcotest.check_raises "bad params"
    (Invalid_argument "Control: inconsistent parameters") (fun () ->
      ignore
        (Control.world
           ~params:{ Control.bound = 5; limit = 3; force = 1; max_drift = 1 }
           ()))

let () =
  Alcotest.run "control"
    [
      ( "control",
        [
          Alcotest.test_case "informed keeps plant in range" `Quick
            test_informed_keeps_plant_in_range;
          Alcotest.test_case "uncontrolled diverges" `Quick
            test_uncontrolled_plant_diverges;
          Alcotest.test_case "wrong dialect diverges" `Quick
            test_wrong_dialect_diverges;
          Alcotest.test_case "universal all dialects" `Quick
            test_universal_all_dialects;
          Alcotest.test_case "universal settles" `Quick test_universal_settles;
          Alcotest.test_case "sensing safe+viable" `Quick
            test_sensing_safe_and_viable;
          Alcotest.test_case "params validation" `Quick test_params_validation;
        ] );
    ]
