open Goalcom_automata
open Goalcom
module Json = Goalcom_obs.Json

type entry = {
  server_class : string;
  enum : string;
  index : int;
  budget : int;
}

(* Same hand-rolled JSONL discipline as lib/obs: a closed, flat record
   per line, written with the Jsonl escaper and read back through the
   Json reader, so `jq` and the trace tooling both take these files. *)

let entry_to_json e =
  let b = Buffer.create 96 in
  let add_str s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'
  in
  Buffer.add_string b "{\"class\":";
  add_str e.server_class;
  Buffer.add_string b ",\"enum\":";
  add_str e.enum;
  Buffer.add_string b ",\"index\":";
  Buffer.add_string b (string_of_int e.index);
  Buffer.add_string b ",\"budget\":";
  Buffer.add_string b (string_of_int e.budget);
  Buffer.add_char b '}';
  Buffer.contents b

let save path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (entry_to_json e);
          output_char oc '\n')
        entries)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let entry_of_json j =
  let* server_class = field "class" Json.string_opt j in
  let* enum = field "enum" Json.string_opt j in
  let* index = field "index" Json.int_opt j in
  let* budget = field "budget" Json.int_opt j in
  Ok { server_class; enum; index; budget }

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let result =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec go k acc =
              match input_line ic with
              | exception End_of_file -> Ok (List.rev acc)
              | line when String.trim line = "" -> go (k + 1) acc
              | line -> begin
                  match
                    let* j = Json.parse line in
                    entry_of_json j
                  with
                  | Ok e -> go (k + 1) (e :: acc)
                  | Error e -> Error (Printf.sprintf "line %d: %s" k e)
                end
            in
            go 1 [])
      in
      Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) result

let key_matches ~server_class ~enum e =
  String.equal e.server_class server_class && String.equal e.enum enum

let lookup entries ~server_class ~enum =
  List.fold_left
    (fun acc e -> if key_matches ~server_class ~enum e then Some e else acc)
    None entries

let record entries e =
  let replaced = ref false in
  let entries' =
    List.map
      (fun old ->
        if key_matches ~server_class:e.server_class ~enum:e.enum old then begin
          replaced := true;
          e
        end
        else old)
      entries
  in
  if !replaced then entries' else entries @ [ e ]

let of_race ~server_class ~enum (race : Universal.race) =
  {
    server_class;
    enum = Enum.name enum;
    index = race.Universal.winner_index;
    budget = max 1 race.Universal.winner_rounds;
  }

let emit_warm ~server_class ~enum_name ~index ~accepted ~detail =
  if Trace.enabled () then
    Trace.emit
      (Trace.Warm { server_class; enum = enum_name; index; accepted; detail })

let hints ~enum ~server_class store =
  let enum_name = Enum.name enum in
  match store with
  | Error e ->
      emit_warm ~server_class ~enum_name ~index:(-1) ~accepted:false ~detail:e;
      []
  | Ok entries -> begin
      match lookup entries ~server_class ~enum:enum_name with
      | None -> [] (* the ordinary cold start; nothing to report *)
      | Some e ->
          let stale =
            if e.budget <= 0 then
              Some (Printf.sprintf "bad budget %d" e.budget)
            else if e.index < 0 then
              Some (Printf.sprintf "bad index %d" e.index)
            else begin
              match Enum.cardinality enum with
              | Some c when e.index >= c ->
                  Some
                    (Printf.sprintf "stale index %d (class has %d candidates)"
                       e.index c)
              | _ -> None
            end
          in
          (match stale with
          | Some detail ->
              emit_warm ~server_class ~enum_name ~index:e.index ~accepted:false
                ~detail;
              []
          | None ->
              emit_warm ~server_class ~enum_name ~index:e.index ~accepted:true
                ~detail:"hit";
              [ { Levin.index = e.index; budget = e.budget } ])
    end

let hinted_schedule ?schedule ~enum ~server_class store =
  let tail = match schedule with Some s -> s | None -> Levin.schedule () in
  match hints ~enum ~server_class store with
  | [] -> tail
  | hs -> Levin.hinted ~hints:hs tail
