(* Tests for the transfer goal, including the feedback-accelerated
   universal user. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let alphabet = 5
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i
let payload = [ 9; 8; 7; 6; 5 ]
let goal = Transfer.goal ~payloads:[ payload ] ~alphabet ()

let run ~user ~server ?(horizon = 2000) seed =
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_informed_delivers () =
  List.iter
    (fun i ->
      let user = Transfer.informed_user ~alphabet (dialect i) in
      let server = Transfer.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server (10 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_mismatch_fails_with_errors () =
  let user = Transfer.informed_user ~alphabet (dialect 2) in
  let server = Transfer.server ~alphabet (dialect 0) in
  let outcome, history = run ~user ~server ~horizon:200 20 in
  Alcotest.(check bool) "not achieved" false outcome.Outcome.achieved;
  let errs =
    Listx.count
      (fun (r : History.Round.t) -> r.server_to_user = Msg.Text "err")
      (History.rounds history)
  in
  Alcotest.(check bool) "server complained" true (errs > 0)

let test_relay_framing () =
  (* Exercise the raw relay: correct framing delivers exactly once. *)
  let rng = Rng.make 30 in
  let inst = Strategy.Instance.create (Transfer.relay ~alphabet) in
  let feed m =
    Strategy.Instance.step rng inst
      { Io.Server.from_user = m; from_world = Msg.Silence }
  in
  let a1 = feed (Msg.Sym Transfer.begin_cmd) in
  Alcotest.(check bool) "ok" true (a1.Io.Server.to_user = Msg.Text "ok");
  ignore (feed (Msg.Pair (Msg.Sym Transfer.data_cmd, Msg.Int 1)));
  ignore (feed (Msg.Pair (Msg.Sym Transfer.data_cmd, Msg.Int 2)));
  let a2 = feed (Msg.Sym Transfer.end_cmd) in
  Alcotest.(check bool) "done" true (a2.Io.Server.to_user = Msg.Text "done");
  Alcotest.(check (option (list int)))
    "delivered" (Some [ 1; 2 ])
    (Codec.ints_opt a2.Io.Server.to_world);
  (* Out-of-protocol message in Idle state errors. *)
  let a3 = feed (Msg.Sym Transfer.end_cmd) in
  Alcotest.(check bool) "err" true (a3.Io.Server.to_user = Msg.Text "err")

let test_universal_levin () =
  List.iter
    (fun i ->
      let user = Transfer.universal_user ~alphabet dialects in
      let server = Transfer.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server ~horizon:4000 (40 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "levin universal vs %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_universal_fast () =
  List.iter
    (fun i ->
      let user = Transfer.universal_user_fast ~alphabet dialects in
      let server = Transfer.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server ~horizon:4000 (50 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "fast universal vs %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_fast_beats_levin_on_late_dialect () =
  (* With the matching dialect late in the class and a long payload,
     error feedback pays off. *)
  let long_payload = Listx.range 0 30 in
  let goal = Transfer.goal ~payloads:[ long_payload ] ~alphabet () in
  let server = Transfer.server ~alphabet (dialect (alphabet - 1)) in
  let cost user seed =
    let outcome, history =
      Exec.run_outcome
        ~config:(Exec.config ~horizon:20000 ())
        ~goal ~user ~server (Rng.make seed)
    in
    Alcotest.(check bool) "achieved" true outcome.Outcome.achieved;
    History.length history
  in
  let fast = cost (Transfer.universal_user_fast ~alphabet dialects) 60 in
  let levin = cost (Transfer.universal_user ~alphabet dialects) 61 in
  Alcotest.(check bool)
    (Printf.sprintf "fast (%d) < levin (%d)" fast levin)
    true (fast < levin)

let test_goal_sensing_safe () =
  let users = Enum.to_list (Transfer.user_class ~alphabet dialects) in
  let servers = Enum.to_list (Transfer.server_class ~alphabet dialects) in
  let report =
    Sensing.check_safety_finite
      ~config:(Exec.config ~horizon:300 ())
      ~goal ~users ~servers Transfer.goal_sensing (Rng.make 70)
  in
  Alcotest.(check bool) "safety" true report.Sensing.holds

let test_validation () =
  Alcotest.check_raises "empty payload"
    (Invalid_argument "Transfer: empty payload") (fun () ->
      ignore (Transfer.world_of_payload []));
  Alcotest.check_raises "alphabet"
    (Invalid_argument "Transfer: alphabet must have at least 4 symbols")
    (fun () -> ignore (Transfer.relay ~alphabet:3))

let () =
  Alcotest.run "transfer"
    [
      ( "transfer",
        [
          Alcotest.test_case "informed delivers" `Quick test_informed_delivers;
          Alcotest.test_case "mismatch errors" `Quick test_mismatch_fails_with_errors;
          Alcotest.test_case "relay framing" `Quick test_relay_framing;
          Alcotest.test_case "universal (levin)" `Quick test_universal_levin;
          Alcotest.test_case "universal (fast)" `Quick test_universal_fast;
          Alcotest.test_case "fast beats levin" `Quick test_fast_beats_levin_on_late_dialect;
          Alcotest.test_case "goal sensing safe" `Quick test_goal_sensing_safe;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
