(** The synchronous execution engine (§2).

    Rounds are numbered from 1.  In round [r] every party simultaneously
    observes the messages emitted for it in round [r-1] (silence in
    round 1) and emits its round-[r] messages.  After the user halts it
    emits silence forever; execution continues for [drain] extra rounds
    so in-flight messages (e.g. the user's final answer to the world)
    are delivered and reflected in the world state, then stops.

    Compact goals never halt: the run is truncated at [horizon].

    {b Tracing.}  Both entry points take an optional {!Trace.sink}.
    When given, it is installed as the ambient sink for the duration of
    the call (so strategy-level emitters — universal users, tolerant
    sensing, fault wrappers — share it); when absent, whatever ambient
    sink is already installed (see {!Trace.set_sink}) is used, and with
    no sink at all the tracing path allocates nothing. *)

type config = {
  horizon : int;  (** maximum number of rounds; must be positive *)
  drain : int;  (** extra rounds executed after the user halts *)
  world_choice : int;  (** which non-deterministic world to couple *)
}

val config : ?horizon:int -> ?drain:int -> ?world_choice:int -> unit -> config
(** Defaults: [horizon = 1000], [drain = 2], [world_choice = 0]. *)

val run :
  ?sink:Trace.sink ->
  ?config:config ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  History.t
(** Execute the coupled system and return its history.  The generator
    is split into independent streams for the three parties, so a
    party's randomness does not depend on the others' sampling order.
    Emits [Run_start], [Round_start], [Emit] (non-silent messages
    only), [Halt] and [Run_end] trace events when tracing is on. *)

val run_outcome :
  ?sink:Trace.sink ->
  ?config:config ->
  ?tail_window:int ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  Outcome.t * History.t
(** {!run} followed by {!Outcome.judge}; additionally emits one
    [Violation] event per referee-violation round (after [Run_end] —
    violations are post-hoc judgments, not run-time occurrences).

    For success-rate estimation over repeated trials use
    [Goalcom_harness.Trial.run] (or its [success_rate] wrapper), which
    also cycles world choices and counts unsafe halts. *)
