(** E1 / Table 1 — Theorem 1 on the printing goal: the universal user succeeds with every server in the dialect class; a fixed-protocol user succeeds with exactly one.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
