lib/goals/codec.ml: Array Cnf Goalcom Goalcom_sat List Msg
