(** Attribution: fold a trace into per-candidate-index spans and an
    overhead ledger.

    Theorem 1's enumeration overhead is, operationally, the rounds a
    universal user burns on candidate strategies that do not end up
    achieving the goal.  The universal constructions announce their
    moves in the trace — [Switch] (compact), [Session] (Levin/finite),
    [Resume] (checkpoint restore) — and this module charges every
    round, message, sensing verdict and fault activation to the
    candidate in charge when it happened, per run and aggregated over a
    trial batch.

    Charging discipline (event order in a round is [Round_start],
    [Sense], [Switch]/[Session], [Emit]s, [Halt]): a sensing verdict is
    charged to the candidate it judged (before any switch it triggers);
    the round itself and its messages go to the candidate that acted in
    it (after the round's switches settled).  Every [Round_start] is
    charged to exactly one span, so per-candidate rounds sum exactly to
    the run total — the unit test pins this on the committed E1 golden
    trace. *)

(** A maximal stretch of consecutive rounds charged to one candidate.
    [index = None] means no enumeration event ever named a candidate
    (an informed/baseline user, or a truncated capture). *)
type span = {
  index : int option;
  first_round : int;
  last_round : int;
  rounds : int;
  sessions : int;  (** Levin [Session] events opening this span *)
  retries : int;  (** same-index [Switch] retries opening this span *)
  user_msgs : int;
  server_msgs : int;
  world_msgs : int;
  wire_symbols : int;  (** {!Metrics.msg_weight} over the span's emissions *)
  senses : int;
  negatives : int;
  faults : int;
}

type run = {
  goal : string;
  user : string;
  server : string;
  horizon : int;
  drain : int;
  world_choice : int;
  spans : span list;  (** in round order; rounds partition the run *)
  rounds : int;  (** from [Run_end], or counted [Round_start]s if absent *)
  halted : bool;
  violations : int;
  winner : int option;
      (** candidate in charge at a halted end; [None] if the run timed
          out or no candidate was ever named *)
}

val run_of_events : Goalcom.Trace.event list -> run
(** Attribute a single run's events (everything up to the next
    [Run_start]). *)

val of_events : Goalcom.Trace.event list -> run list
(** Split a (possibly multi-run) stream with
    {!Goalcom.Trace.split_runs} and attribute each run. *)

(** {1 The overhead ledger} *)

type candidate = {
  cand_index : int option;
  cand_spans : int;
  cand_sessions : int;
  cand_retries : int;
  cand_rounds : int;
  cand_user_msgs : int;
  cand_server_msgs : int;
  cand_world_msgs : int;
  cand_wire_symbols : int;
  cand_senses : int;
  cand_negatives : int;
  cand_faults : int;
  cand_wins : int;  (** runs this candidate was in charge of at a halt *)
}

type ledger = {
  runs : int;
  halted_runs : int;
  total_rounds : int;
  winning_rounds : int;
      (** rounds charged, in each run, to that run's winner *)
  wasted_rounds : int;
      (** [total - winning]: the measured enumeration overhead *)
  candidates : candidate list;  (** ascending index; [None] last *)
}

val ledger : run list -> ledger
val ledger_of_events : Goalcom.Trace.event list -> ledger

(** {1 Per-session attribution}

    An engine trace replays each session's events contiguously in
    session-id order: [Supervise] decisions interleaved with the
    session's incarnations' run events.  {!sessions_of_events}
    reassembles per-session slices (every run event belongs to the
    session of the most recent [Supervise] — the engine emits ["admit"]
    first), segments each slice into incarnations with
    {!Goalcom.Trace.split_runs}, and links each incarnation to the
    enumeration index its checkpoint restored (its [Resume] event) —
    so a restart's supervise timeline meets the enumeration ladder. *)

type incarnation = {
  inc_number : int;  (** 1-based, in start order *)
  inc_resumed_at : int option;
      (** the enumeration index the incarnation's checkpoint restored
          ([Resume.index]); [None] for a cold start *)
  inc_run : run;
}

type session_span = {
  sess_id : int;
  sess_admit_tick : int option;
  sess_outcome : (string * int) option;
      (** terminal supervise action (["done"], ["give-up"],
          ["deadline"], ["shed"]) and its tick; [None] if unfinished *)
  sess_restarts : int;
  sess_kills : int;
  sess_rounds : int;  (** over all incarnations *)
  sess_incarnations : incarnation list;
}

val sessions_of_events : Goalcom.Trace.event list -> session_span list
(** Sessions in id order.  Events before the first [Supervise] (a bare
    run stream) are not attributed — use {!of_events} for those. *)

(** {1 Rendering} *)

val ledger_table : ledger -> Goalcom_prelude.Table.t
val runs_table : run list -> Goalcom_prelude.Table.t

val sessions_table : session_span list -> Goalcom_prelude.Table.t
(** One row per session: outcome, incarnations, restarts / kills,
    rounds, the enumeration indices restarts resumed at, and the
    winning candidate of the last incarnation. *)
