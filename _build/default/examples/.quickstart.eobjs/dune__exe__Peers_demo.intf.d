examples/peers_demo.mli:
