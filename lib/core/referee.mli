(** Referees: the success criterion of a goal (§2–3).

    A referee is a function of the sequence of world states (views).
    The paper distinguishes two families:

    - {b Finite goals}: the user must halt, and the referee decides the
      finite history available at that point.
    - {b Compact goals}: the execution runs forever and the referee's
      verdict is determined by whether the number of {e unacceptable}
      prefixes is finite.  Each prefix is judged by a temporal predicate;
      a successful execution is one whose violations eventually stop
      (co-Büchi acceptance).

    Executable semantics: runs are truncated at a horizon, and "finitely
    many unacceptable prefixes" becomes "no unacceptable prefix in the
    tail window" (see {!Outcome}).

    {b Incremental evaluation.}  Referees are judged as folds: a live
    {!type:judge} is primed with the initial world view and absorbs one
    world view per round, reporting the current prefix's verdict after
    each step.  Native incremental referees ({!finite_incremental},
    {!compact_incremental}) carry their own O(1)-per-step state; the
    list-predicate constructors ({!finite}, {!compact}) remain as
    compatibility adapters whose judge accumulates the prefix and
    re-applies the predicate (one predicate call per round, exactly the
    historical cost). *)

type t

type verdict = [ `Ok | `Violation ]

val finite : string -> (Msg.t list -> bool) -> t
(** Legacy finite constructor: the predicate decides the chronological
    world views, initial view first.  Adapter: stepping this referee's
    judge re-runs the predicate on the accumulated prefix, so only the
    final verdict is cheap — prefer {!finite_incremental} on hot
    paths. *)

val compact : string -> (Msg.t list -> bool) -> t
(** Legacy compact constructor: the predicate judges one prefix, given
    its world views most recent first (so O(1) access to the current
    world state).  Adapter: the judge conses each view and calls the
    predicate once per round — the same cost the engine always paid. *)

val finite_incremental :
  string ->
  init:(Msg.t -> 's * verdict) ->
  step:('s -> Msg.t -> 's * verdict) ->
  t
(** Native incremental finite referee.  [init] receives the initial
    world view and returns the state plus the verdict on the empty
    (zero-round) history; [step] absorbs one round's world view and
    reports the verdict on the prefix ending there.  The final verdict
    is the referee's decision ({!decide_finite}). *)

val compact_incremental :
  string ->
  init:(Msg.t -> 's * verdict) ->
  step:('s -> Msg.t -> 's * verdict) ->
  t
(** Native incremental compact referee: [step]'s verdict is the
    acceptability of the prefix ending at the absorbed round.  [init]'s
    verdict is recorded for the zero-round prefix but never counted by
    {!violations} (violations are per round, 1-based). *)

val finite_exists : string -> (Msg.t -> bool) -> t
(** Finite referee accepting iff some world view (including the initial
    one) satisfies the predicate — the incremental state is a single
    "seen it" bool, and the predicate is no longer consulted once it
    has held (like [List.exists]).  Most finite goals in the library
    have this shape. *)

val name : t -> string
val is_finite : t -> bool

(** {2 Live judging} *)

type judge
(** One judging instance: feed it world views round by round. *)

val start : t -> Msg.t -> judge * verdict
(** Fresh judge primed with the initial world view; the verdict is the
    empty-history verdict (meaningful for finite referees). *)

val step : judge -> Msg.t -> judge * verdict
(** Absorb one round's world view; the verdict judges the prefix ending
    at that round.  O(1) for native incremental referees; for the
    list-predicate adapters it costs one predicate call (finite
    adapters re-decide the whole accumulated prefix). *)

(** {2 Whole-history judgements} *)

val decide_finite : t -> History.t -> bool
(** Finite referee's verdict on a history — a single fold.
    @raise Invalid_argument on a compact referee. *)

val decider : t -> Msg.t list -> bool
(** The finite decision as a list predicate (chronological world views,
    initial first), however the referee is represented — what
    {!Multi_session} uses to judge inner sessions.
    @raise Invalid_argument on a compact referee or an empty list. *)

val violations : t -> History.t -> int list
(** Rounds (1-based) whose prefix is unacceptable, for a compact
    referee; for a finite referee, [[]] if the history is accepted and
    [[length]] otherwise.  A single O(n) fold: one {!step} per round. *)

val violations_prefix : t -> History.t -> int list
(** Reference implementation of {!violations} that re-judges every
    prefix from scratch — O(n²).  It exists as the equivalence oracle
    for the incremental engine (the qcheck suite asserts
    [violations = violations_prefix]) and as the quadratic baseline the
    bench's compact-judge kernel measures the fold against. *)

val verdict_of_bool : bool -> verdict
(** [`Ok] iff the argument holds — a convenience for writing
    incremental referees. *)
