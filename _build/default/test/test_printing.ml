(* Tests for the printing goal: printer mechanics, world bookkeeping,
   informed-user success, dialect mismatch failure, sensing validity and
   the universal user's recovery. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let alphabet = 4
let rng seed = Rng.make seed

let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i

let run_with ~user ~server ~doc ?(horizon = 200) seed =
  let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
  Exec.run_outcome
    ~config:(Exec.config ~horizon ())
    ~goal ~user ~server (rng seed)

let test_informed_identity () =
  let doc = [ 3; 1; 4; 1; 5 ] in
  let user = Printing.informed_user ~alphabet (dialect 0) in
  let server = Printing.server ~alphabet (dialect 0) in
  let outcome, history = run_with ~user ~server ~doc 42 in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved;
  Alcotest.(check bool) "halted" true outcome.Outcome.halted;
  Alcotest.(check bool)
    "halts promptly" true
    (History.length history < 30)

let test_informed_every_rotation () =
  let doc = [ 7; 7; 2 ] in
  List.iter
    (fun i ->
      let user = Printing.informed_user ~alphabet (dialect i) in
      let server = Printing.server ~alphabet (dialect i) in
      let outcome, _ = run_with ~user ~server ~doc (100 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "rotation %d achieved" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_mismatch_fails () =
  let doc = [ 1; 2; 3 ] in
  let user = Printing.informed_user ~alphabet (dialect 0) in
  let server = Printing.server ~alphabet (dialect 1) in
  let outcome, _ = run_with ~user ~server ~doc 7 in
  Alcotest.(check bool) "not achieved" false outcome.Outcome.achieved

let test_universal_succeeds_with_every_rotation () =
  List.iter
    (fun i ->
      let user = Printing.universal_user ~alphabet dialects in
      let server = Printing.server ~alphabet (dialect i) in
      let outcome, _ =
        run_with ~user ~server ~doc:[ 5; 6 ] ~horizon:2000 (200 + i)
      in
      Alcotest.(check bool)
        (Printf.sprintf "universal vs rotation %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_universal_recovers_from_garbage_page () =
  (* The universal user's early wrong-dialect sessions dirty the page;
     the right session must clear it first. *)
  let stats = Universal.new_stats () in
  let user = Printing.universal_user ~stats ~alphabet dialects in
  let server = Printing.server ~alphabet (dialect (alphabet - 1)) in
  let outcome, _ =
    run_with ~user ~server ~doc:[ 9; 8; 7; 6 ] ~horizon:4000 11
  in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved;
  Alcotest.(check bool) "tried several sessions" true (stats.sessions > 1)

let test_sensing_safe_and_viable () =
  let goal = Printing.goal ~alphabet () in
  let users = Enum.to_list (Printing.user_class ~alphabet dialects) in
  let servers = Enum.to_list (Printing.server_class ~alphabet dialects) in
  let safety =
    Sensing.check_safety_finite ~goal ~users ~servers Printing.sensing (rng 1)
  in
  Alcotest.(check bool) "safety holds" true safety.Sensing.holds;
  let user_for server =
    (* Recover the dialect from the server's position in the class. *)
    let idx =
      match
        Listx.find_index
          (fun s -> Strategy.name s = Strategy.name server)
          servers
      with
      | Some i -> i
      | None -> Alcotest.fail "server not in class"
    in
    Printing.informed_user ~alphabet (dialect idx)
  in
  let viability =
    Sensing.check_viability_finite ~goal ~user_for ~servers Printing.sensing
      (rng 2)
  in
  Alcotest.(check bool) "viability holds" true viability.Sensing.holds

let test_printer_direct () =
  (* Drive the raw printer server without the engine. *)
  let printer = Printing.printer ~alphabet in
  let inst = Strategy.Instance.create printer in
  let r = rng 3 in
  let feed m =
    Strategy.Instance.step r inst
      { Io.Server.from_user = m; from_world = Msg.Silence }
  in
  let page_of (act : Io.Server.act) = Codec.ints_opt act.to_world in
  ignore (feed (Msg.Pair (Msg.Sym Printing.print_cmd, Msg.Int 4)));
  let act = feed (Msg.Pair (Msg.Sym Printing.print_cmd, Msg.Int 2)) in
  Alcotest.(check (option (list int))) "two chars" (Some [ 4; 2 ]) (page_of act);
  let act = feed (Msg.Sym Printing.clear_cmd) in
  Alcotest.(check (option (list int))) "cleared" (Some []) (page_of act);
  let act = feed (Msg.Text "garbage") in
  Alcotest.(check (option (list int))) "garbage ignored" (Some []) (page_of act)

let test_universal_over_full_permutation_class () =
  (* Not just rotations: the entire symmetric group S_3 as the dialect
     class (6 permutations of a 3-symbol alphabet). *)
  let alphabet = 3 in
  let perms = Dialect.enumerate_all ~size:alphabet in
  Alcotest.(check (option int)) "3! dialects" (Some 6) (Enum.cardinality perms);
  List.iter
    (fun i ->
      let user = Printing.universal_user ~alphabet perms in
      let server = Printing.server ~alphabet (Enum.get_exn perms i) in
      let goal = Printing.goal ~docs:[ [ 8; 1 ] ] ~alphabet () in
      let outcome, _ =
        Exec.run_outcome
          ~config:(Exec.config ~horizon:6000 ())
          ~goal ~user ~server (Rng.make (300 + i))
      in
      Alcotest.(check bool)
        (Printf.sprintf "permutation %d" i)
        true outcome.Outcome.achieved)
    [ 0; 2; 5 ]

let test_goal_validation () =
  Alcotest.check_raises "empty doc" (Invalid_argument "Printing: empty document")
    (fun () -> ignore (Printing.world_of_doc []));
  Alcotest.check_raises "small alphabet"
    (Invalid_argument "Printing: alphabet must have at least 3 symbols")
    (fun () -> ignore (Printing.goal ~alphabet:2 ()))

let () =
  Alcotest.run "printing"
    [
      ( "printing",
        [
          Alcotest.test_case "informed identity dialect" `Quick test_informed_identity;
          Alcotest.test_case "informed all rotations" `Quick test_informed_every_rotation;
          Alcotest.test_case "dialect mismatch fails" `Quick test_mismatch_fails;
          Alcotest.test_case "universal succeeds" `Quick test_universal_succeeds_with_every_rotation;
          Alcotest.test_case "universal recovers" `Quick test_universal_recovers_from_garbage_page;
          Alcotest.test_case "full permutation class" `Quick test_universal_over_full_permutation_class;
          Alcotest.test_case "sensing safe+viable" `Quick test_sensing_safe_and_viable;
          Alcotest.test_case "printer mechanics" `Quick test_printer_direct;
          Alcotest.test_case "validation" `Quick test_goal_validation;
        ] );
    ]
