(** The prime field GF(2^31 - 1).

    Substrate for the sum-check protocol: challenges are drawn from a
    field large enough that a cheating prover's consistent-lie
    polynomial is caught with overwhelming probability (soundness error
    ≤ n·d / p per run).  The Mersenne prime 2^31 − 1 keeps every
    product inside OCaml's 63-bit native integers. *)

type t = private int
(** A field element, canonically in [0, p). *)

val p : int
(** 2147483647. *)

val zero : t
val one : t

val of_int : int -> t
(** Reduce any integer (including negatives) into the field. *)

val to_int : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val pow : t -> int -> t
(** [pow x k] for [k >= 0].  @raise Invalid_argument on negative k. *)

val inv : t -> t
(** Multiplicative inverse (Fermat).  @raise Division_by_zero on 0. *)

val equal : t -> t -> bool

val random : Goalcom_prelude.Rng.t -> t
(** Uniform field element. *)

val pp : Format.formatter -> t -> unit
