open Goalcom_sat

let literal_eval point lit =
  let v = abs lit in
  if lit > 0 then point.(v) else Gf.sub Gf.one point.(v)

let clause_eval clause point =
  let miss =
    List.fold_left
      (fun acc lit -> Gf.mul acc (Gf.sub Gf.one (literal_eval point lit)))
      Gf.one clause
  in
  Gf.sub Gf.one miss

let formula_eval (cnf : Cnf.t) point =
  if Array.length point <> cnf.num_vars + 1 then
    invalid_arg "Arith.formula_eval: dimension mismatch";
  List.fold_left
    (fun acc clause -> Gf.mul acc (clause_eval clause point))
    Gf.one cnf.clauses

let degree_bound (cnf : Cnf.t) =
  let counts = Array.make (cnf.num_vars + 1) 0 in
  List.iter
    (fun clause ->
      List.iter (fun lit -> counts.(abs lit) <- counts.(abs lit) + 1) clause)
    cnf.clauses;
  Array.fold_left max 1 counts

let count_models_mod (cnf : Cnf.t) =
  let n = cnf.num_vars in
  let point = Array.make (n + 1) Gf.zero in
  let total = ref Gf.zero in
  let rec go v =
    if v > n then total := Gf.add !total (formula_eval cnf point)
    else begin
      point.(v) <- Gf.zero;
      go (v + 1);
      point.(v) <- Gf.one;
      go (v + 1)
    end
  in
  go 1;
  Gf.to_int !total
