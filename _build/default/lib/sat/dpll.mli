(** DPLL SAT solver.

    Classic Davis–Putnam–Logemann–Loveland search with unit propagation
    and pure-literal elimination.  Complete: returns a satisfying
    assignment iff one exists.  Instances in this library are small
    (tens of variables), so no clause learning is needed. *)

val solve : Cnf.t -> Cnf.assignment option
(** [Some a] with [Cnf.eval cnf a = true], or [None] if unsatisfiable. *)

val satisfiable : Cnf.t -> bool

val count_models : ?limit:int -> Cnf.t -> int
(** Number of satisfying assignments, counting at most [limit]
    (default [max_int]).  Exponential — use on tiny instances only. *)
