lib/core/machine_user.mli: Goalcom_automata Io Mealy Strategy
