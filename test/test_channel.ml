(* Tests for channel imperfections on the user↔server link. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let echo_server =
  Strategy.stateless ~name:"echo" (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Silence -> Io.Server.silent
      | m -> Io.Server.say_user m)

let drive server msgs =
  let rng = Rng.make 1 in
  let inst = Strategy.Instance.create server in
  List.map
    (fun m ->
      (Strategy.Instance.step rng inst
         { Io.Server.from_user = m; from_world = Msg.Silence })
        .Io.Server.to_user)
    msgs

let test_delay_zero_is_identity () =
  let outs = drive (Channel.delayed ~rounds:0 echo_server) [ Msg.Int 1; Msg.Int 2 ] in
  Alcotest.(check bool) "unchanged" true (outs = [ Msg.Int 1; Msg.Int 2 ])

let test_delay_shifts_both_directions () =
  (* Latency 1 in each direction: the echo of message k appears 2 steps
     later than without delay. *)
  let msgs = [ Msg.Int 1; Msg.Int 2; Msg.Int 3; Msg.Silence; Msg.Silence ] in
  let outs = drive (Channel.delayed ~rounds:1 echo_server) msgs in
  Alcotest.(check bool) "first two silent" true
    (List.nth outs 0 = Msg.Silence && List.nth outs 1 = Msg.Silence);
  Alcotest.(check bool) "echo of 1 at step 3" true (List.nth outs 2 = Msg.Int 1);
  Alcotest.(check bool) "echo of 2 at step 4" true (List.nth outs 3 = Msg.Int 2)

let test_delay_validation () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Channel.delayed: negative latency") (fun () ->
      ignore (Channel.delayed ~rounds:(-1) echo_server))

let test_drop_inbound () =
  let all_dropped = Channel.drop_inbound ~drop_prob:1.0 echo_server in
  let outs = drive all_dropped [ Msg.Int 7; Msg.Int 8 ] in
  Alcotest.(check bool) "nothing gets through" true
    (List.for_all Msg.is_silence outs);
  let none_dropped = Channel.drop_inbound ~drop_prob:0.0 echo_server in
  let outs = drive none_dropped [ Msg.Int 7 ] in
  Alcotest.(check bool) "all gets through" true (outs = [ Msg.Int 7 ])

let test_duplicate_outbound () =
  let dup = Channel.duplicate_outbound echo_server in
  let outs = drive dup [ Msg.Int 5; Msg.Silence; Msg.Silence ] in
  Alcotest.(check bool) "original then duplicate" true
    (List.nth outs 0 = Msg.Int 5 && List.nth outs 1 = Msg.Int 5
    && List.nth outs 2 = Msg.Silence)

let test_duplicate_queues_consecutive_emissions () =
  (* Regression: a single pending slot lost the duplicate of the first
     of two back-to-back emissions; the queue must deliver both. *)
  let dup = Channel.duplicate_outbound echo_server in
  let outs =
    drive dup [ Msg.Int 1; Msg.Int 2; Msg.Silence; Msg.Silence; Msg.Silence ]
  in
  Alcotest.(check bool) "both duplicates delivered in order" true
    (outs
    = [ Msg.Int 1; Msg.Int 2; Msg.Int 1; Msg.Int 2; Msg.Silence ])

let test_drop_inbound_instances_independent () =
  (* Regression: a construction-time RNG was shared by all instances of
     the same wrapped strategy, so replays diverged.  With per-step
     randomness, two instances driven with equal per-step seeds see
     identical losses. *)
  let dropped = Channel.drop_inbound ~drop_prob:0.5 echo_server in
  let drive_with_seed seed =
    let rng = Rng.make seed in
    let inst = Strategy.Instance.create dropped in
    List.map
      (fun m ->
        (Strategy.Instance.step rng inst
           { Io.Server.from_user = m; from_world = Msg.Silence })
          .Io.Server.to_user)
      (List.map (fun i -> Msg.Int i) (Listx.range 0 40))
  in
  Alcotest.(check bool) "same seed, same losses" true
    (drive_with_seed 7 = drive_with_seed 7);
  Alcotest.(check bool) "loss is actually happening" true
    (List.exists Msg.is_silence (drive_with_seed 7))

(* End-to-end: the printing goal still works through imperfect links. *)

let alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i
let goal = Printing.goal ~docs:[ [ 4; 2 ] ] ~alphabet ()

let run ~user ~server ~horizon seed =
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_informed_tolerates_delay () =
  List.iter
    (fun delay ->
      let server = Channel.delayed ~rounds:delay (Printing.server ~alphabet (dialect 0)) in
      let user = Printing.informed_user ~alphabet (dialect 0) in
      let outcome, _ = run ~user ~server ~horizon:500 (10 + delay) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d tolerated" delay)
        true outcome.Outcome.achieved)
    [ 0; 1; 2 ]

let test_universal_tolerates_delay () =
  let server = Channel.delayed ~rounds:2 (Printing.server ~alphabet (dialect 2)) in
  let user = Printing.universal_user ~alphabet dialects in
  let outcome, _ = run ~user ~server ~horizon:8000 20 in
  Alcotest.(check bool) "universal through delayed link" true
    outcome.Outcome.achieved

let test_universal_tolerates_duplication () =
  let server = Channel.duplicate_outbound (Printing.server ~alphabet (dialect 1)) in
  let user = Printing.universal_user ~alphabet dialects in
  let outcome, _ = run ~user ~server ~horizon:8000 30 in
  Alcotest.(check bool) "universal through stuttering link" true
    outcome.Outcome.achieved

let test_universal_tolerates_mild_loss () =
  (* The informed printing protocol is open-loop for data, so inbound
     loss can garble a session — but retries (and re-sessions) recover;
     mild loss should still mostly succeed within a generous horizon. *)
  let successes = ref 0 in
  List.iter
    (fun seed ->
      let server =
        Channel.drop_inbound ~drop_prob:0.05
          (Printing.server ~alphabet (dialect 0))
      in
      let user = Printing.universal_user ~alphabet dialects in
      let outcome, _ = run ~user ~server ~horizon:8000 (100 + seed) in
      if outcome.Outcome.achieved then incr successes)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool)
    (Printf.sprintf "mostly succeeds under 5%% loss (%d/5)" !successes)
    true (!successes >= 4)

let () =
  Alcotest.run "channel"
    [
      ( "channel",
        [
          Alcotest.test_case "delay 0 identity" `Quick test_delay_zero_is_identity;
          Alcotest.test_case "delay shifts" `Quick test_delay_shifts_both_directions;
          Alcotest.test_case "delay validation" `Quick test_delay_validation;
          Alcotest.test_case "drop inbound" `Quick test_drop_inbound;
          Alcotest.test_case "duplicate outbound" `Quick test_duplicate_outbound;
          Alcotest.test_case "duplicate queues consecutive emissions" `Quick
            test_duplicate_queues_consecutive_emissions;
          Alcotest.test_case "drop instances independent" `Quick
            test_drop_inbound_instances_independent;
          Alcotest.test_case "informed tolerates delay" `Quick test_informed_tolerates_delay;
          Alcotest.test_case "universal tolerates delay" `Quick test_universal_tolerates_delay;
          Alcotest.test_case "universal tolerates duplication" `Quick test_universal_tolerates_duplication;
          Alcotest.test_case "universal tolerates mild loss" `Quick test_universal_tolerates_mild_loss;
        ] );
    ]
