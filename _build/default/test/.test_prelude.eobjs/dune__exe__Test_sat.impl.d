test/test_sat.ml: Alcotest Array Cnf Dpll Gen Goalcom_prelude Goalcom_sat List Listx Printf Rng
