open Goalcom_automata
open Goalcom

type t = { states : int; inputs : int; outputs : int; next_out : int array }

let of_mealy (m : Mealy.t) =
  let states = m.Mealy.states in
  let inputs = m.Mealy.inputs in
  let outputs = m.Mealy.outputs in
  let next_out = Array.make (states * inputs) 0 in
  for s = 0 to states - 1 do
    let next_row = m.Mealy.next.(s) and out_row = m.Mealy.out.(s) in
    let base = s * inputs in
    for i = 0 to inputs - 1 do
      next_out.(base + i) <- (next_row.(i) * outputs) + out_row.(i)
    done
  done;
  { states; inputs; outputs; next_out }

let to_mealy t =
  let next = Array.make_matrix t.states t.inputs 0 in
  let out = Array.make_matrix t.states t.inputs 0 in
  for s = 0 to t.states - 1 do
    for i = 0 to t.inputs - 1 do
      let c = t.next_out.((s * t.inputs) + i) in
      next.(s).(i) <- c / t.outputs;
      out.(s).(i) <- c mod t.outputs
    done
  done;
  Mealy.make ~states:t.states ~inputs:t.inputs ~outputs:t.outputs ~next ~out

let[@inline] step_unsafe t s i =
  let c = Array.unsafe_get t.next_out ((s * t.inputs) + i) in
  (c / t.outputs, c mod t.outputs)

let step t s i =
  if s < 0 || s >= t.states then invalid_arg "Table.step: state out of range";
  if i < 0 || i >= t.inputs then invalid_arg "Table.step: input out of range";
  step_unsafe t s i

let run t word =
  let rec go s = function
    | [] -> []
    | i :: rest ->
        let s', o = step t s i in
        o :: go s' rest
  in
  go 0 word

let check_symbol ~what t i =
  if i < 0 || i >= t.inputs then
    invalid_arg
      (Printf.sprintf "Table.%s: reader produced %d, input alphabet is %d" what
         i t.inputs)
  else i

let sensor ~name ?(empty = false) ~read ~accept t =
  let empty_verdict = if empty then Sensing.Positive else Sensing.Negative in
  Sensing.incremental ~name
    ~init:(fun () -> (0, empty_verdict))
    ~step:(fun s ev ->
      let i = check_symbol ~what:"sensor" t (read ev) in
      let s', o = step_unsafe t s i in
      (s', if accept o then Sensing.Positive else Sensing.Negative))

let referee_of ~kind ~name ~read ~accept t =
  let absorb s v =
    let i = check_symbol ~what:"referee" t (read v) in
    let s', o = step_unsafe t s i in
    (s', Referee.verdict_of_bool (accept o))
  in
  (* The initial world view is the DFA's first input symbol; the
     verdicts thereafter judge the prefix ending at each round's view,
     exactly the incremental-referee contract. *)
  match kind with
  | `Finite ->
      Referee.finite_incremental name ~init:(absorb 0) ~step:absorb
  | `Compact ->
      Referee.compact_incremental name ~init:(absorb 0) ~step:absorb

let finite_referee ~name ~read ~accept t =
  referee_of ~kind:`Finite ~name ~read ~accept t

let compact_referee ~name ~read ~accept t =
  referee_of ~kind:`Compact ~name ~read ~accept t
