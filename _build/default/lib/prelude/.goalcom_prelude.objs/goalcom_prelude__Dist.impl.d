lib/prelude/dist.ml: Float List Rng
