open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_faults

type case = { name : string; events : unit -> Trace.event list }

(* The two reference runs behind the golden-trace regression suite.
   Everything here must stay deterministic: fixed seeds, fixed
   configs, and no wall-clock anywhere in the event stream.  The CLI
   ([goalcom trace-golden DIR]) regenerates the committed files from
   these same constructors, so test and generator cannot drift
   apart. *)

let record_run ~config ~goal ~user ~server ~seed =
  let (_ : Outcome.t * History.t), events =
    Goalcom_obs.Recorder.record (fun () ->
        Exec.run_outcome ~config ~goal ~user ~server (Rng.make seed))
  in
  events

(* E1 flavour: the universal printing user against a rotated-dialect
   printer, so the trace shows the Levin sessions scanning the class
   until the right dialect prints the document and sensing halts the
   run. *)
let e1_printing =
  {
    name = "e1_printing";
    events =
      (fun () ->
        let alphabet = 3 in
        let doc = [ 3; 1; 4 ] in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
        let user = Printing.universal_user ~alphabet dialects in
        let server = Printing.server ~alphabet (Enum.get_exn dialects 1) in
        let config = Exec.config ~horizon:600 () in
        record_run ~config ~goal ~user ~server ~seed:1);
  }

(* E16 flavour: the same construction against a crash-restarting
   printer, so the trace interleaves Fault events with the enumeration
   recovering from lost server state. *)
let e16_crash =
  {
    name = "e16_crash";
    events =
      (fun () ->
        let alphabet = 4 in
        let doc = [ 4; 2 ] in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
        let user = Printing.universal_user ~alphabet dialects in
        let fault =
          match Fault.stack_of_string ~alphabet "crash:25" with
          | Ok f -> f
          | Error e -> invalid_arg ("Trace_cases.e16_crash: " ^ e)
        in
        let server =
          Fault.apply fault (Printing.server ~alphabet (Enum.get_exn dialects 2))
        in
        let config = Exec.config ~horizon:400 () in
        record_run ~config ~goal ~user ~server ~seed:16);
  }

(* E3 flavour: the Levin/finite universal user navigating a maze, with
   a checkpoint threaded through two incarnations.  The first run is
   cut short by a small horizon mid-enumeration; the second resumes
   from the recorded schedule position — its trace opens with a
   [Resume] event carrying the skipped slot count — and completes.
   Both runs land in one file; the per-run invariant checker
   ([Trace.split_runs]) validates each segment on its own clock. *)
let e3_maze =
  {
    name = "e3_maze";
    events =
      (fun () ->
        let alphabet = 4 in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let scenario =
          Maze.scenario ~width:5 ~height:5 ~start:(0, 0) ~target:(3, 2) ()
        in
        let goal = Maze.goal ~scenarios:[ scenario ] ~alphabet () in
        let server = Maze.server ~alphabet (Enum.get_exn dialects 2) in
        let enum = Maze.user_class ~alphabet ~scenario dialects in
        let checkpoint = Universal.new_checkpoint () in
        let incarnation () =
          Universal.finite ~checkpoint ~enum ~sensing:Maze.sensing ()
        in
        let (_ : Outcome.t * History.t), events =
          Goalcom_obs.Recorder.record (fun () ->
              (* First incarnation: the horizon expires mid-enumeration,
                 leaving consumed Levin slots behind in the checkpoint. *)
              let (_ : Outcome.t * History.t) =
                Exec.run_outcome
                  ~config:(Exec.config ~horizon:12 ())
                  ~goal ~user:(incarnation ()) ~server (Rng.make 3)
              in
              (* Second incarnation: resumes past the consumed slots. *)
              Exec.run_outcome
                ~config:(Exec.config ~horizon:400 ())
                ~goal ~user:(incarnation ()) ~server (Rng.make 3))
        in
        events);
  }

let all = [ e1_printing; e3_maze; e16_crash ]
