type t = int

let p = 2147483647 (* 2^31 - 1 *)
let zero = 0
let one = 1
let of_int n = ((n mod p) + p) mod p
let to_int t = t
let add a b = (a + b) mod p
let sub a b = ((a - b) mod p + p) mod p
let neg a = (p - a) mod p
let mul a b = a * b mod p

let pow x k =
  if k < 0 then invalid_arg "Gf.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
    end
  in
  go one x k

let inv x = if x = 0 then raise Division_by_zero else pow x (p - 2)
let equal = Int.equal
let random rng = Goalcom_prelude.Rng.int rng p
let pp ppf t = Format.pp_print_int ppf t
