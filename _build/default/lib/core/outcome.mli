(** Judging a (truncated) execution against a goal.

    Compact goals are defined over infinite executions; a horizon-bounded
    run is judged by the standard truncation: the goal counts as achieved
    iff no prefix in the last [tail_window] rounds is unacceptable (the
    violations "stopped happening").  Finite goals are achieved iff the
    user halted and the referee accepts the history at that point. *)

type t = {
  achieved : bool;
  halted : bool;
  halt_round : int option;
  rounds : int;  (** rounds actually executed *)
  violations : int;  (** compact: number of unacceptable prefixes *)
  violation_rounds : int list;  (** ascending round indices *)
  last_violation : int option;
}

val judge : ?tail_window:int -> Goal.t -> History.t -> t
(** [tail_window] defaults to [max 1 (length / 5)].  For finite goals
    the window is ignored. *)

val pp : Format.formatter -> t -> unit
