(** E7 / Table 4 — delegation of SAT search across dialected solvers; verification-based sensing rejects every answer of a lying solver.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
