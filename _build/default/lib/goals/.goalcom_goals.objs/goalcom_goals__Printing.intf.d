lib/goals/printing.mli: Dialect Enum Goal Goalcom Goalcom_automata Levin Sensing Seq Strategy Universal World
