open Goalcom_prelude

type t = {
  states : int;
  inputs : int;
  outputs : int;
  trans : (int * int) Dist.t array array;
}

let make ~states ~inputs ~outputs ~trans =
  if states <= 0 || inputs <= 0 || outputs <= 0 then
    invalid_arg "Prob_mealy.make: dimensions must be positive";
  if Array.length trans <> states then
    invalid_arg "Prob_mealy.make: wrong number of rows";
  Array.iter
    (fun row ->
      if Array.length row <> inputs then
        invalid_arg "Prob_mealy.make: ragged transition table";
      Array.iter
        (fun dist ->
          List.iter
            (fun (s', o) ->
              if s' < 0 || s' >= states || o < 0 || o >= outputs then
                invalid_arg "Prob_mealy.make: outcome out of range")
            (Dist.support dist))
        row)
    trans;
  { states; inputs; outputs; trans }

let of_mealy (m : Mealy.t) =
  let trans =
    Array.init m.states (fun s ->
        Array.init m.inputs (fun i ->
            Dist.return (m.next.(s).(i), m.out.(s).(i))))
  in
  make ~states:m.states ~inputs:m.inputs ~outputs:m.outputs ~trans

let perturb ~flip_prob (m : Mealy.t) =
  if flip_prob < 0. || flip_prob > 1. then
    invalid_arg "Prob_mealy.perturb: flip_prob out of range";
  let trans =
    Array.init m.states (fun s ->
        Array.init m.inputs (fun i ->
            let s' = m.next.(s).(i) and o = m.out.(s).(i) in
            if flip_prob = 0. then Dist.return (s', o)
            else begin
              let noise = flip_prob /. float_of_int m.outputs in
              Dist.of_weighted
                (((s', o), 1. -. flip_prob)
                :: List.map
                     (fun sym -> ((s', sym), noise))
                     (Listx.range 0 m.outputs))
            end))
  in
  make ~states:m.states ~inputs:m.inputs ~outputs:m.outputs ~trans

let step_dist t s i =
  if s < 0 || s >= t.states then invalid_arg "Prob_mealy.step_dist: state out of range";
  if i < 0 || i >= t.inputs then invalid_arg "Prob_mealy.step_dist: input out of range";
  t.trans.(s).(i)

let step rng t s i = Dist.sample rng (step_dist t s i)

let run rng t word =
  let rec go s = function
    | [] -> []
    | i :: rest ->
        let s', o = step rng t s i in
        o :: go s' rest
  in
  go 0 word
