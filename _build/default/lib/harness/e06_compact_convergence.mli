(** E6 / Figure 3 — compact goals: cumulative referee violations flatten for the universal user and diverge for non-adapting users.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
