lib/sat/gen.ml: Array Cnf Goalcom_prelude List Listx Rng
