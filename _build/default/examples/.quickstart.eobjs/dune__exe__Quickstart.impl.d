examples/quickstart.ml: Enum Exec Format Goal Goalcom Goalcom_automata Goalcom_prelude History Io List Msg Outcome Printf Referee Rng Sensing Strategy Universal View World
