# Tier-1 verification in one command: `make check`.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Everything the CI gate requires, in order.
check: build test

# Regenerates every experiment table, runs the bechamel kernels, and
# writes BENCH_faults.json with the fault-layer timings.
bench:
	dune exec bench/main.exe

clean:
	dune clean
