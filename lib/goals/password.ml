open Goalcom
open Goalcom_automata

let unlocked_msg = Msg.Text "unlocked"
let locked_msg = Msg.Text "locked"

let server_with_password w =
  if w < 0 then invalid_arg "Password.server_with_password: negative";
  Strategy.make
    ~name:(Printf.sprintf "lock(%d)" w)
    ~init:(fun () -> false)
    ~step:(fun _rng unlocked (obs : Io.Server.obs) ->
      let unlocked = unlocked || obs.from_user = Msg.Int w in
      if unlocked then
        (true, { Io.Server.to_user = unlocked_msg; to_world = unlocked_msg })
      else (false, Io.Server.silent))

let server_class ~space =
  if space <= 0 then invalid_arg "Password.server_class: empty space";
  Enum.tabulate ~name:(Printf.sprintf "locks(%d)" space) space
    server_with_password

let world () =
  World.make ~name:"lock-world"
    ~init:(fun () -> false)
    ~step:(fun _rng unlocked (obs : Io.World.obs) ->
      let unlocked = unlocked || obs.from_server = unlocked_msg in
      ( unlocked,
        Io.World.say_user (if unlocked then unlocked_msg else locked_msg) ))
    ~view:(fun unlocked -> if unlocked then unlocked_msg else locked_msg)

let referee = Referee.finite_exists "lock-opened" (Msg.equal unlocked_msg)

let goal () = Goal.make ~name:"password" ~worlds:[ world () ] ~referee

let guesser w =
  Strategy.make
    ~name:(Printf.sprintf "guess(%d)" w)
    ~init:(fun () -> false)
    ~step:(fun _rng guessed (obs : Io.User.obs) ->
      if obs.from_world = unlocked_msg then (guessed, Io.User.halt_act)
      else if guessed then (true, Io.User.silent)
      else (true, Io.User.say_server (Msg.Int w)))

let informed_user = guesser

let user_class ~space =
  if space <= 0 then invalid_arg "Password.user_class: empty space";
  Enum.tabulate ~name:(Printf.sprintf "guessers(%d)" space) space guesser

let sweeper ~space =
  if space <= 0 then invalid_arg "Password.sweeper: empty space";
  Strategy.make
    ~name:(Printf.sprintf "sweeper(%d)" space)
    ~init:(fun () -> 0)
    ~step:(fun _rng next (obs : Io.User.obs) ->
      if obs.from_world = unlocked_msg then (next, Io.User.halt_act)
      else if next >= space then (next, Io.User.silent)
      else (next + 1, Io.User.say_server (Msg.Int next)))

(* The world's broadcast is monotone ("unlocked" stays), so the latest
   event carries the verdict. *)
let sensing =
  Sensing.of_latest ~name:"world-unlocked" ~empty:false (fun e ->
      Msg.equal e.View.from_world unlocked_msg)

let universal_user ?schedule ?stats ~space () =
  Universal.finite ?schedule ?stats ~enum:(user_class ~space) ~sensing ()
