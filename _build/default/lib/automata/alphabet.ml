open Goalcom_prelude

type t = { names : string array }

let make names =
  if names = [] then invalid_arg "Alphabet.make: empty";
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Alphabet.make: duplicate names";
  List.iter
    (fun n -> if n = "" then invalid_arg "Alphabet.make: empty name")
    names;
  { names = Array.of_list names }

let of_size n =
  if n <= 0 then invalid_arg "Alphabet.of_size: non-positive size";
  { names = Array.init n (fun i -> "s" ^ string_of_int i) }

let size t = Array.length t.names

let name t i =
  if i < 0 || i >= size t then invalid_arg "Alphabet.name: out of range";
  t.names.(i)

let index t n =
  let rec go i =
    if i >= size t then None
    else if t.names.(i) = n then Some i
    else go (i + 1)
  in
  go 0

let symbols t = Listx.range 0 (size t)
let mem t i = i >= 0 && i < size t
