(* E1 / Table 1 — Theorem 1 on the printing goal: the universal user
   achieves the goal with every server in the dialect class, while the
   fixed-protocol user only succeeds on the dialect it was built for.
   Sweeps the class size. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_baselines

let title = "Universality on the printing goal (per dialect-class size)"

let claim =
  "Theorem 1: with safe+viable sensing the enumeration-based user achieves \
   the goal with every helpful server; a fixed-protocol user does not"

let doc = [ 3; 1; 4 ]
let trials = 2

(* A horizon big enough for the Levin schedule to give the last
   candidate a session long enough to print [doc] and verify. *)
let horizon_for class_size =
  let session = (2 * List.length doc) + 14 in
  (2 * Levin.work_before ~index:(class_size - 1) ~budget:session ()) + 400

let stats_for ~seed ~alphabet user_of_server =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
  let config = Exec.config ~horizon:(horizon_for alphabet) () in
  let results =
    List.map
      (fun i ->
        let server = Printing.server ~alphabet (Enum.get_exn dialects i) in
        Trial.run ~config ~trials ~seed:(seed + i) ~goal
          ~user:(user_of_server i) ~server ())
      (Listx.range 0 alphabet)
  in
  let rate =
    Stats.mean (List.map (fun (r : Trial.result) -> r.success_rate) results)
  in
  let rounds =
    List.concat_map (fun (r : Trial.result) -> r.rounds_to_success) results
  in
  (rate, if rounds = [] then Float.nan else Stats.mean rounds)

let run ~seed =
  let rows =
    List.map
      (fun alphabet ->
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let users = Printing.user_class ~alphabet dialects in
        let universal () = Printing.universal_user ~alphabet dialects in
        let u_rate, u_rounds =
          stats_for ~seed ~alphabet (fun _ -> universal ())
        in
        let f_rate, _ = stats_for ~seed ~alphabet (fun _ -> Baselines.fixed users) in
        let o_rate, o_rounds =
          stats_for ~seed ~alphabet (fun i -> Baselines.oracle users i)
        in
        [
          Table.cell_int alphabet;
          Table.cell_pct u_rate;
          Table.cell_pct f_rate;
          Table.cell_pct o_rate;
          Table.cell_float u_rounds;
          Table.cell_float o_rounds;
        ])
      [ 3; 4; 6; 8 ]
  in
  Table.make ~title:"E1 (Table 1): universality on the printing goal"
    ~columns:
      [
        "|class|";
        "universal ok";
        "fixed ok";
        "oracle ok";
        "universal rounds";
        "oracle rounds";
      ]
    ~notes:
      [
        "success aggregated over every server dialect in the class, 2 trials each";
        "expected shape: universal and oracle at 100%; fixed at 1/|class|";
      ]
    rows
