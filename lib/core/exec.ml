open Goalcom_prelude

type config = { horizon : int; drain : int; world_choice : int }

let config ?(horizon = 1000) ?(drain = 2) ?(world_choice = 0) () =
  if horizon <= 0 then invalid_arg "Exec.config: horizon must be positive";
  if drain < 0 then invalid_arg "Exec.config: drain must be non-negative";
  { horizon; drain; world_choice }

let default_config = config ()

let run ?sink ?(config = default_config) ~goal ~user ~server rng =
  let body () =
    (* Resolved once: strategies cannot (re)install sinks mid-run. *)
    let tracing = Trace.enabled () in
    if tracing then
      Trace.emit
        (Trace.Run_start
           {
             goal = Goal.name goal;
             user = Strategy.name user;
             server = Strategy.name server;
             horizon = config.horizon;
             drain = config.drain;
             world_choice = config.world_choice;
           });
    let user_rng = Rng.split rng in
    let server_rng = Rng.split rng in
    let world_rng = Rng.split rng in
    let user_inst = Strategy.Instance.create user in
    let server_inst = Strategy.Instance.create server in
    let world_inst = World.Instance.create (Goal.world ~choice:config.world_choice goal) in
    let initial_world_view = World.Instance.view world_inst in
    let emit_msg round src dst msg =
      if not (Msg.is_silence msg) then
        Trace.emit (Trace.Emit { round; src; dst; msg })
    in
    (* Messages in flight: emitted last round, delivered this round. *)
    let rec loop round halted drain_left prev_acts rounds_rev =
      let (u2s, u2w), (s2u, s2w), (w2u, w2s) = prev_acts in
      if round > config.horizon || (halted && drain_left <= 0) then begin
        let history = History.make ~initial_world_view (List.rev rounds_rev) in
        if tracing then
          Trace.emit
            (Trace.Run_end { rounds = History.length history; halted });
        history
      end
      else begin
        if tracing then begin
          Trace.set_round round;
          Trace.emit (Trace.Round_start { round })
        end;
        let user_act : Io.User.act =
          if halted then Io.User.halt_act
          else
            Strategy.Instance.step user_rng user_inst
              { Io.User.from_server = s2u; from_world = w2u; round }
        in
        let server_act : Io.Server.act =
          Strategy.Instance.step server_rng server_inst
            { Io.Server.from_user = u2s; from_world = w2s }
        in
        let world_act : Io.World.act =
          World.Instance.step world_rng world_inst
            { Io.World.from_user = u2w; from_server = s2w }
        in
        let halted' = halted || user_act.halt in
        if tracing then begin
          emit_msg round Trace.User Trace.Server user_act.to_server;
          emit_msg round Trace.User Trace.World user_act.to_world;
          emit_msg round Trace.Server Trace.User server_act.to_user;
          emit_msg round Trace.Server Trace.World server_act.to_world;
          emit_msg round Trace.World Trace.User world_act.to_user;
          emit_msg round Trace.World Trace.Server world_act.to_server;
          if halted' && not halted then Trace.emit (Trace.Halt { round })
        end;
        let round_record =
          {
            History.Round.index = round;
            user_to_server = user_act.to_server;
            user_to_world = user_act.to_world;
            server_to_user = server_act.to_user;
            server_to_world = server_act.to_world;
            world_to_user = world_act.to_user;
            world_to_server = world_act.to_server;
            world_view = World.Instance.view world_inst;
            user_halted = halted';
          }
        in
        let drain_left' = if halted then drain_left - 1 else config.drain in
        loop (round + 1) halted' drain_left'
          ( (user_act.to_server, user_act.to_world),
            (server_act.to_user, server_act.to_world),
            (world_act.to_user, world_act.to_server) )
          (round_record :: rounds_rev)
      end
    in
    let silence2 = (Msg.Silence, Msg.Silence) in
    loop 1 false config.drain (silence2, silence2, silence2) []
  in
  match sink with None -> body () | Some s -> Trace.with_sink s body

let run_outcome ?sink ?config ?tail_window ~goal ~user ~server rng =
  let body () =
    let history = run ?config ~goal ~user ~server rng in
    let outcome = Outcome.judge ?tail_window goal history in
    if Trace.enabled () then
      List.iter
        (fun round -> Trace.emit (Trace.Violation { round }))
        outcome.Outcome.violation_rounds;
    (outcome, history)
  in
  match sink with None -> body () | Some s -> Trace.with_sink s body
