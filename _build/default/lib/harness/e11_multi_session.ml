(* E11 / Table 6 — multi-session goals (full version): a finite goal
   repeated forever, success = all but finitely many sessions pass.
   The compact universal user fails a few early sessions while the
   enumeration explores, then passes every session. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Multi-session printing: failed sessions are finite"

let claim =
  "multi-session goals (full version): the compact construction turns a \
   finite goal into an endlessly repeated one and still universalises — \
   only finitely many sessions fail"

let alphabet = 4
let doc = [ 2; 5 ]
let session_length = 30
let sessions_to_run = 60

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let base = Printing.goal ~docs:[ doc ] ~alphabet () in
  let ms_goal = Multi_session.goal ~session_length base in
  let horizon = (session_length * sessions_to_run) + 5 in
  let rows =
    List.map
      (fun i ->
        let server = Printing.server ~alphabet (Enum.get_exn dialects i) in
        let user =
          Universal.compact ~grace:1
            ~enum:(Multi_session.wrap_class (Printing.user_class ~alphabet dialects))
            ~sensing:Multi_session.sensing ()
        in
        let outcome, history =
          Exec.run_outcome
            ~config:(Exec.config ~horizon ())
            ~goal:ms_goal ~user ~server
            (Rng.make (seed + i))
        in
        let results = Multi_session.session_results history in
        let failed = Listx.count not results in
        let last_failed =
          match
            List.filteri (fun _ r -> not r) results |> List.length,
            Listx.find_index not (List.rev results)
          with
          | 0, _ -> "-"
          | _, Some from_end -> string_of_int (List.length results - from_end)
          | _, None -> "-"
        in
        [
          Table.cell_int i;
          (if outcome.Outcome.achieved then "yes" else "no");
          Table.cell_int (List.length results);
          Table.cell_int failed;
          last_failed;
        ])
      (Listx.range 0 alphabet)
  in
  Table.make
    ~title:"E11 (Table 6): multi-session printing per server dialect"
    ~columns:
      [ "server index"; "achieved"; "sessions"; "failed sessions"; "last failure at" ]
    ~notes:
      [
        Printf.sprintf "%d sessions of %d rounds each; class = %d dialects"
          sessions_to_run session_length alphabet;
        "expected shape: achieved everywhere; failures confined to the first \
         few sessions (more for later dialect indices)";
      ]
    rows
