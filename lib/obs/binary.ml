open Goalcom

(* Compact binary encoding of Trace.event, with an exact decoder.

   This is the wire format of the ring-buffer sink (Ring): one tag byte
   per event naming the constructor, then the fields in declaration
   order — LEB128 varints for integers (zigzag-mapped first, since
   rounds are small and positive but Warm.index can be -1 and Msg.Int
   is arbitrary), length-prefixed raw bytes for strings, one byte for
   parties and booleans, and a tagged preorder walk for messages.  A
   typical Round_start is 2 bytes and an Emit 6-8 bytes, vs ~35 and
   ~90 for their JSONL renderings; more importantly encoding is pure
   byte pushes — no formatting, no escaping, no intermediate strings —
   which is what gets the enabled-tracing overhead from the JSONL
   sink's ~500% down to the ring's few tens of percent.

   The decoder inverts the encoder byte-for-byte (qcheck pins the
   roundtrip over arbitrary events, adversarial Text bytes included),
   so drained rings feed every existing consumer of Trace.event —
   Jsonl, Trace_diff, Span, Metrics, the golden tests — unchanged.

   Integers are OCaml's native 63-bit ints: zigzag folds the sign into
   the low bit ((n lsl 1) lxor (n asr 62), a bijection on the 63-bit
   domain), then base-128 groups emit low-to-high, at most 9 bytes. *)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

(* The encoder writes through a manual cursor over a growable [Bytes.t]
   rather than a [Buffer.t]: on the ring's hot path every event pays
   the encode, and a bounds-checked-once run of [unsafe_set]s is
   several times cheaper than per-byte [Buffer.add_char] calls.  The
   [Buffer] entry points below are wrappers so there is exactly one
   copy of the schema. *)

type enc = { mutable ebuf : Bytes.t; mutable epos : int }

(* Unaligned word access, bounds checked by the callers' [ensure]s. *)
external get64u : string -> int -> int64 = "%caml_string_get64u"
external set64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let enc_create n = { ebuf = Bytes.create (max n 16); epos = 0 }
let enc_len e = e.epos
let enc_bytes e = e.ebuf

let enc_set_len e n =
  if n < 0 || n > e.epos then invalid_arg "Binary.enc_set_len";
  e.epos <- n

let grow e need =
  let cap = ref (Bytes.length e.ebuf * 2) in
  while need > !cap do
    cap := !cap * 2
  done;
  let nb = Bytes.create !cap in
  Bytes.blit e.ebuf 0 nb 0 e.epos;
  e.ebuf <- nb

let[@inline] ensure e n =
  if e.epos + n > Bytes.length e.ebuf then grow e (e.epos + n)

(* Capacity must have been [ensure]d by the caller. *)
let[@inline] put_raw e c =
  Bytes.unsafe_set e.ebuf e.epos c;
  e.epos <- e.epos + 1

let[@inline] put_byte e c =
  ensure e 1;
  put_raw e c

(* Raw (pre-[ensure]d, 9 bytes) varint write.  The first two group
   sizes are unrolled: rounds, ticks, indices and symbols are almost
   always 1-2 groups, and on the non-flambda compiler keeping the hot
   case free of the recursive loop is worth ~2x on the encode. *)
let[@inline] put_uvarint_raw e v =
  if v land lnot 0x7f = 0 then put_raw e (Char.unsafe_chr v)
  else begin
    put_raw e (Char.unsafe_chr (v land 0x7f lor 0x80));
    let v = v lsr 7 in
    if v land lnot 0x7f = 0 then put_raw e (Char.unsafe_chr v)
    else begin
      put_raw e (Char.unsafe_chr (v land 0x7f lor 0x80));
      let rec go v =
        if v land lnot 0x7f = 0 then put_raw e (Char.unsafe_chr v)
        else begin
          put_raw e (Char.unsafe_chr (v land 0x7f lor 0x80));
          go (v lsr 7)
        end
      in
      (* [lsr] brings in zeros, so this terminates after at most 9
         groups total for a 63-bit pattern. *)
      go (v lsr 7)
    end
  end

let[@inline] put_int_raw e n = put_uvarint_raw e (zigzag n)

(* The fully-local fast path used by the per-round constructors: write
   a varint group sequence at [p] in [b] (capacity ensured by the
   caller) and return the next position, so a whole event's writes
   compile to straight-line stores on one local cursor with a single
   [epos] store at the end. *)
let rec varint_rest b p v =
  if v land lnot 0x7f = 0 then begin
    Bytes.unsafe_set b p (Char.unsafe_chr v);
    p + 1
  end
  else begin
    Bytes.unsafe_set b p (Char.unsafe_chr (v land 0x7f lor 0x80));
    varint_rest b (p + 1) (v lsr 7)
  end

let[@inline] varint_at b p v =
  if v land lnot 0x7f = 0 then begin
    Bytes.unsafe_set b p (Char.unsafe_chr v);
    p + 1
  end
  else begin
    Bytes.unsafe_set b p (Char.unsafe_chr (v land 0x7f lor 0x80));
    let v = v lsr 7 in
    if v land lnot 0x7f = 0 then begin
      Bytes.unsafe_set b (p + 1) (Char.unsafe_chr v);
      p + 2
    end
    else varint_rest b (p + 1) v
  end

let put_string e s =
  let len = String.length s in
  ensure e (9 + len);
  put_uvarint_raw e len;
  let b = e.ebuf in
  let p = e.epos in
  (* Short strings (sensor names, actions, classes — the per-round
     kind) copy as one or two possibly-overlapping 8-byte words: the
     compiler lowers the [64u] primitives to plain unaligned
     loads/stores, where a blit would pay a C-call round trip per
     event.  In bounds by the [ensure] and the [len >= 8] guard. *)
  if len >= 8 then
    if len <= 16 then begin
      set64u b p (get64u s 0);
      set64u b (p + len - 8) (get64u s (len - 8))
    end
    else Bytes.unsafe_blit_string s 0 b p len
  else
    for i = 0 to len - 1 do
      Bytes.unsafe_set b (p + i) (String.unsafe_get s i)
    done;
  e.epos <- p + len

let[@inline] put_bool_raw e v = put_raw e (if v then '\001' else '\000')

let party_byte = function
  | Trace.User -> '\000'
  | Trace.Server -> '\001'
  | Trace.World -> '\002'

(* Each case ensures once for its fixed-size fields (tag byte plus
   varints, 9 bytes each worst case) and then writes raw; strings and
   sub-messages re-ensure for themselves. *)
let rec put_msg e (m : Msg.t) =
  match m with
  | Msg.Silence -> put_byte e '\000'
  | Msg.Sym s ->
      ensure e 10;
      let b = e.ebuf in
      let p = e.epos in
      Bytes.unsafe_set b p '\001';
      e.epos <- varint_at b (p + 1) (zigzag s)
  | Msg.Int n ->
      ensure e 10;
      let b = e.ebuf in
      let p = e.epos in
      Bytes.unsafe_set b p '\002';
      e.epos <- varint_at b (p + 1) (zigzag n)
  | Msg.Text s ->
      put_byte e '\003';
      put_string e s
  | Msg.Pair (x, y) ->
      put_byte e '\004';
      put_msg e x;
      put_msg e y
  | Msg.Seq ms ->
      ensure e 10;
      put_raw e '\005';
      put_uvarint_raw e (List.length ms);
      List.iter (put_msg e) ms

let put_event e (ev : Trace.event) =
  match ev with
  | Trace.Run_start { goal; user; server; horizon; drain; world_choice } ->
      put_byte e '\000';
      put_string e goal;
      put_string e user;
      put_string e server;
      ensure e 27;
      put_int_raw e horizon;
      put_int_raw e drain;
      put_int_raw e world_choice
  | Trace.Round_start { round } ->
      ensure e 10;
      let b = e.ebuf in
      let p = e.epos in
      Bytes.unsafe_set b p '\001';
      e.epos <- varint_at b (p + 1) (zigzag round)
  | Trace.Emit { round; src; dst; msg } -> (
      ensure e 22;
      let b = e.ebuf in
      let p = e.epos in
      Bytes.unsafe_set b p '\002';
      let p = varint_at b (p + 1) (zigzag round) in
      Bytes.unsafe_set b p (party_byte src);
      Bytes.unsafe_set b (p + 1) (party_byte dst);
      let p = p + 2 in
      (* Leaf payloads finish inside the one ensured window; anything
         nested falls back to the general walk. *)
      match msg with
      | Msg.Sym s ->
          Bytes.unsafe_set b p '\001';
          e.epos <- varint_at b (p + 1) (zigzag s)
      | Msg.Int n ->
          Bytes.unsafe_set b p '\002';
          e.epos <- varint_at b (p + 1) (zigzag n)
      | Msg.Silence ->
          Bytes.unsafe_set b p '\000';
          e.epos <- p + 1
      | m ->
          e.epos <- p;
          put_msg e m)
  | Trace.Halt { round } ->
      ensure e 10;
      let b = e.ebuf in
      let p = e.epos in
      Bytes.unsafe_set b p '\003';
      e.epos <- varint_at b (p + 1) (zigzag round)
  | Trace.Sense { round; sensor; positive; clock; patience } ->
      ensure e 10;
      let b = e.ebuf in
      let p = e.epos in
      Bytes.unsafe_set b p '\004';
      e.epos <- varint_at b (p + 1) (zigzag round);
      put_string e sensor;
      ensure e 19;
      let b = e.ebuf in
      let p = e.epos in
      Bytes.unsafe_set b p (if positive then '\001' else '\000');
      let p = varint_at b (p + 1) (zigzag clock) in
      e.epos <- varint_at b p (zigzag patience)
  | Trace.Switch { round; from_index; to_index; attempt } ->
      ensure e 37;
      put_raw e '\005';
      put_int_raw e round;
      put_int_raw e from_index;
      put_int_raw e to_index;
      put_int_raw e attempt
  | Trace.Resume { index; slots } ->
      ensure e 19;
      put_raw e '\006';
      put_int_raw e index;
      put_int_raw e slots
  | Trace.Session { round; index; budget } ->
      ensure e 28;
      put_raw e '\007';
      put_int_raw e round;
      put_int_raw e index;
      put_int_raw e budget
  | Trace.Fault { round; fault; detail } ->
      ensure e 10;
      put_raw e '\008';
      put_int_raw e round;
      put_string e fault;
      put_string e detail
  | Trace.Violation { round } ->
      ensure e 10;
      put_raw e '\009';
      put_int_raw e round
  | Trace.Run_end { rounds; halted } ->
      ensure e 11;
      put_raw e '\010';
      put_int_raw e rounds;
      put_bool_raw e halted
  | Trace.Supervise { tick; session; action; detail } ->
      ensure e 19;
      put_raw e '\011';
      put_int_raw e tick;
      put_int_raw e session;
      put_string e action;
      put_string e detail
  | Trace.Warm { server_class; enum; index; accepted; detail } ->
      put_byte e '\012';
      put_string e server_class;
      put_string e enum;
      ensure e 10;
      put_int_raw e index;
      put_bool_raw e accepted;
      put_string e detail

let encode e ev =
  e.epos <- 0;
  put_event e ev

let add_event b ev =
  let e = enc_create 64 in
  put_event e ev;
  Buffer.add_subbytes b e.ebuf 0 e.epos

let event_to_string ev =
  let e = enc_create 64 in
  put_event e ev;
  Bytes.sub_string e.ebuf 0 e.epos

(* Decoding.  A cursor over the input string; corruption (truncation,
   unknown tags, varints past 9 bytes) raises [Corrupt] internally and
   surfaces as [Error] with the failing offset. *)

exception Corrupt of string * int

let read_byte s pos =
  if !pos >= String.length s then raise (Corrupt ("truncated", !pos));
  let c = Char.code (String.unsafe_get s !pos) in
  incr pos;
  c

let read_uvarint s pos =
  let rec go acc shift =
    if shift > 56 then raise (Corrupt ("varint too long", !pos));
    let c = read_byte s pos in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then acc else go acc (shift + 7)
  in
  go 0 0

let read_int s pos = unzigzag (read_uvarint s pos)

let read_string s pos =
  let len = read_uvarint s pos in
  if len < 0 || !pos + len > String.length s then
    raise (Corrupt ("truncated string", !pos));
  let str = String.sub s !pos len in
  pos := !pos + len;
  str

let read_bool s pos =
  match read_byte s pos with
  | 0 -> false
  | 1 -> true
  | _ -> raise (Corrupt ("bad boolean", !pos - 1))

let read_party s pos =
  match read_byte s pos with
  | 0 -> Trace.User
  | 1 -> Trace.Server
  | 2 -> Trace.World
  | _ -> raise (Corrupt ("bad party", !pos - 1))

let rec read_msg s pos : Msg.t =
  match read_byte s pos with
  | 0 -> Msg.Silence
  | 1 -> Msg.Sym (read_int s pos)
  | 2 -> Msg.Int (read_int s pos)
  | 3 -> Msg.Text (read_string s pos)
  | 4 ->
      let x = read_msg s pos in
      let y = read_msg s pos in
      Msg.Pair (x, y)
  | 5 ->
      let n = read_uvarint s pos in
      if n < 0 || n > String.length s - !pos then
        raise (Corrupt ("bad sequence length", !pos));
      Msg.Seq (List.init n (fun _ -> read_msg s pos))
  | _ -> raise (Corrupt ("bad message tag", !pos - 1))

let read_event s pos : Trace.event =
  match read_byte s pos with
  | 0 ->
      let goal = read_string s pos in
      let user = read_string s pos in
      let server = read_string s pos in
      let horizon = read_int s pos in
      let drain = read_int s pos in
      let world_choice = read_int s pos in
      Trace.Run_start { goal; user; server; horizon; drain; world_choice }
  | 1 -> Trace.Round_start { round = read_int s pos }
  | 2 ->
      let round = read_int s pos in
      let src = read_party s pos in
      let dst = read_party s pos in
      let msg = read_msg s pos in
      Trace.Emit { round; src; dst; msg }
  | 3 -> Trace.Halt { round = read_int s pos }
  | 4 ->
      let round = read_int s pos in
      let sensor = read_string s pos in
      let positive = read_bool s pos in
      let clock = read_int s pos in
      let patience = read_int s pos in
      Trace.Sense { round; sensor; positive; clock; patience }
  | 5 ->
      let round = read_int s pos in
      let from_index = read_int s pos in
      let to_index = read_int s pos in
      let attempt = read_int s pos in
      Trace.Switch { round; from_index; to_index; attempt }
  | 6 ->
      let index = read_int s pos in
      let slots = read_int s pos in
      Trace.Resume { index; slots }
  | 7 ->
      let round = read_int s pos in
      let index = read_int s pos in
      let budget = read_int s pos in
      Trace.Session { round; index; budget }
  | 8 ->
      let round = read_int s pos in
      let fault = read_string s pos in
      let detail = read_string s pos in
      Trace.Fault { round; fault; detail }
  | 9 -> Trace.Violation { round = read_int s pos }
  | 10 ->
      let rounds = read_int s pos in
      let halted = read_bool s pos in
      Trace.Run_end { rounds; halted }
  | 11 ->
      let tick = read_int s pos in
      let session = read_int s pos in
      let action = read_string s pos in
      let detail = read_string s pos in
      Trace.Supervise { tick; session; action; detail }
  | 12 ->
      let server_class = read_string s pos in
      let enum = read_string s pos in
      let index = read_int s pos in
      let accepted = read_bool s pos in
      let detail = read_string s pos in
      Trace.Warm { server_class; enum; index; accepted; detail }
  | t -> raise (Corrupt (Printf.sprintf "unknown event tag %d" t, !pos - 1))

let describe msg pos = Printf.sprintf "byte %d: %s" pos msg

let decode ?(pos = 0) s =
  let cursor = ref pos in
  match read_event s cursor with
  | ev -> Ok (ev, !cursor)
  | exception Corrupt (msg, at) -> Error (describe msg at)

let event_of_string s =
  match decode s with
  | Error _ as e -> e
  | Ok (ev, consumed) ->
      if consumed = String.length s then Ok ev
      else Error (describe "trailing bytes after event" consumed)

let decode_all ?(pos = 0) s =
  let cursor = ref pos in
  let rec go acc =
    if !cursor >= String.length s then Ok (List.rev acc)
    else
      match read_event s cursor with
      | ev -> go (ev :: acc)
      | exception Corrupt (msg, at) -> Error (describe msg at)
  in
  go []

let sink b ev = add_event b ev
