(** Referees: the success criterion of a goal (§2–3).

    A referee is a function of the sequence of world states (views).
    The paper distinguishes two families:

    - {b Finite goals}: the user must halt, and the referee decides the
      finite history available at that point.
    - {b Compact goals}: the execution runs forever and the referee's
      verdict is determined by whether the number of {e unacceptable}
      prefixes is finite.  Each prefix is judged by a temporal predicate;
      a successful execution is one whose violations eventually stop
      (co-Büchi acceptance).

    Executable semantics: runs are truncated at a horizon, and "finitely
    many unacceptable prefixes" becomes "no unacceptable prefix in the
    tail window" (see {!Outcome}). *)

type t =
  | Finite of {
      name : string;
      decide : Msg.t list -> bool;
          (** chronological world views, initial view first *)
    }
  | Compact of {
      name : string;
      acceptable : Msg.t list -> bool;
          (** judges one prefix, given its world views most recent
              first (so O(1) access to the current world state) *)
    }

val finite : string -> (Msg.t list -> bool) -> t
val compact : string -> (Msg.t list -> bool) -> t

val name : t -> string
val is_finite : t -> bool

val decide_finite : t -> History.t -> bool
(** Finite referee's verdict on a history.
    @raise Invalid_argument on a compact referee. *)

val violations : t -> History.t -> int list
(** Rounds (1-based) whose prefix is unacceptable, for a compact
    referee; for a finite referee, [[]] if the history is accepted and
    [[length]] otherwise.  Evaluation is incremental: the prefix list is
    built by consing, so the total cost is one [acceptable] call per
    round. *)
