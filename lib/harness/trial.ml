open Goalcom
open Goalcom_prelude

type result = {
  successes : int;
  trials : int;
  success_rate : float;
  rounds_to_success : float list;
  mean_rounds : float;
  unsafe_halts : int;
  metrics : Goalcom_obs.Metrics.summary option;
}

let rounds_of_success (goal : Goal.t) (outcome : Outcome.t) =
  if Goal.is_finite goal then
    match outcome.Outcome.halt_round with
    | Some r -> float_of_int r
    | None -> float_of_int outcome.Outcome.rounds
  else begin
    (* Compact: the run "succeeds from" the round after its last
       violation; 0 violations means it was good from the start. *)
    match outcome.Outcome.last_violation with
    | Some r -> float_of_int r
    | None -> 0.
  end

let run ?config ?tail_window ?sink ?(collect_metrics = false) ?clock ~trials
    ~seed ~goal ~user ~server () =
  if trials <= 0 then invalid_arg "Trial.run: trials must be positive";
  let meter =
    if collect_metrics then Some (Goalcom_obs.Metrics.create ?clock ())
    else None
  in
  (* The caller's sink and the metrics sink share one ambient
     installation covering every trial, so a single JSONL file (or
     counter set) spans the whole experiment. *)
  let sink =
    match (sink, meter) with
    | s, None -> s
    | None, Some m -> Some (Goalcom_obs.Metrics.sink m)
    | Some s, Some m -> Some (Trace.tee s (Goalcom_obs.Metrics.sink m))
  in
  let body () =
    let master = Rng.make seed in
    let successes = ref 0 in
    let unsafe = ref 0 in
    let rounds = ref [] in
    for i = 0 to trials - 1 do
      let trial_rng = Rng.split master in
      let config =
        let base =
          match config with Some c -> c | None -> Exec.config ()
        in
        Exec.{ base with world_choice = i mod Goal.num_worlds goal }
      in
      let outcome, _ =
        Exec.run_outcome ~config ?tail_window ~goal ~user ~server trial_rng
      in
      if outcome.Outcome.achieved then begin
        incr successes;
        rounds := rounds_of_success goal outcome :: !rounds
      end
      else if outcome.Outcome.halted then incr unsafe
    done;
    let rounds_to_success = List.rev !rounds in
    {
      successes = !successes;
      trials;
      success_rate = float_of_int !successes /. float_of_int trials;
      rounds_to_success;
      mean_rounds =
        (if rounds_to_success = [] then Float.nan
         else Stats.mean rounds_to_success);
      unsafe_halts = !unsafe;
      metrics = None;
    }
  in
  let result =
    match sink with None -> body () | Some s -> Trace.with_sink s body
  in
  { result with metrics = Option.map Goalcom_obs.Metrics.summary meter }

let success_rate ?config ?tail_window ~trials ~seed ~goal ~user ~server () =
  (run ?config ?tail_window ~trials ~seed ~goal ~user ~server ()).success_rate

let pp ppf r =
  Format.fprintf ppf "%d/%d succeeded (%.0f%%), mean rounds %.1f" r.successes
    r.trials (100. *. r.success_rate) r.mean_rounds
