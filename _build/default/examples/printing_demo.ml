(* The paper's motivating example: using a printer without a common
   language.  The printer understands PRINT/CLEAR commands, but in an
   unknown relabelling (dialect) of the command alphabet.  The
   universal user enumerates candidate dialects with the Levin
   schedule, sensing progress through the world's (document, page)
   broadcasts, and halts once the document has appeared on the page.

   Run with:  dune exec examples/printing_demo.exe *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let alphabet = 6
let doc = [ 104; 105 ] (* "hi" *)

let () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
  Format.printf "document to print: %s@."
    (String.concat "" (List.map (fun c -> String.make 1 (Char.chr c)) doc));
  Format.printf "server class: %d rotation dialects of a %d-symbol alphabet@.@."
    alphabet alphabet;
  (* Try the universal user against every server in the class. *)
  List.iter
    (fun i ->
      let server = Printing.server ~alphabet (Enum.get_exn dialects i) in
      let stats = Universal.new_stats () in
      let user = Printing.universal_user ~stats ~alphabet dialects in
      let outcome, history =
        Exec.run_outcome
          ~config:(Exec.config ~horizon:20_000 ())
          ~goal ~user ~server (Rng.make (100 + i))
      in
      Format.printf
        "printer dialect %d: achieved=%b in %4d rounds (%2d sessions, settled on candidate %d)@."
        i outcome.Outcome.achieved (History.length history)
        stats.Universal.sessions stats.Universal.current_index)
    (Listx.range 0 alphabet);
  (* And show what a fixed-protocol user does. *)
  Format.printf "@.fixed-protocol user (assumes dialect 0):@.";
  List.iter
    (fun i ->
      let server = Printing.server ~alphabet (Enum.get_exn dialects i) in
      let user = Printing.informed_user ~alphabet (Enum.get_exn dialects 0) in
      let outcome, _ =
        Exec.run_outcome
          ~config:(Exec.config ~horizon:2_000 ())
          ~goal ~user ~server (Rng.make (200 + i))
      in
      Format.printf "printer dialect %d: achieved=%b@." i outcome.Outcome.achieved)
    (Listx.range 0 alphabet)
