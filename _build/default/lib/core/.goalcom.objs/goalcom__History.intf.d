lib/core/history.mli: Format Msg
