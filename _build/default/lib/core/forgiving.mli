(** Forgiving goals (§2).

    "We focus exclusively on forgiving goals in which every finite
    partial history can be extended to a successful history."
    Forgivingness is what makes enumeration-based universality possible
    at all: the failed experiments of early candidate strategies must
    not doom the execution.

    The checker below is the executable (Monte-Carlo) version: for a
    sample of adversarial prefixes — produced by running a
    damage-dealing user (by default, random actions) for k rounds — a
    designated rescuing strategy is spliced in and must still achieve
    the goal.  Quantifiers are sampled, not exhausted: a [holds = true]
    report is evidence, a [holds = false] report with counterexamples
    is a disproof. *)

type report = {
  goal : string;
  holds : bool;
  checked : int;
  counterexamples : string list;  (** truncated to a handful *)
}

val pp_report : Format.formatter -> report -> unit

val check :
  ?config:Exec.config ->
  ?tail_window:int ->
  ?prefix_lengths:int list ->
  ?trials:int ->
  goal:Goal.t ->
  vandal:Strategy.user ->
  rescuer:Strategy.user ->
  Strategy.server ->
  Goalcom_prelude.Rng.t ->
  report
(** [check ~goal ~vandal ~rescuer server rng] runs, for every listed
    prefix length (default [[0; 5; 20; 60]]) and trial (default 3), the
    user [switch_after k vandal rescuer] against [server] on every
    non-deterministic world of [goal], and reports the pairings whose
    goal was not achieved. *)
