open Goalcom_prelude

let check ~num_vars ~num_clauses ~clause_len =
  if num_vars <= 0 || num_clauses <= 0 || clause_len <= 0 then
    invalid_arg "Sat.Gen: non-positive parameter";
  if clause_len > num_vars then
    invalid_arg "Sat.Gen: clause_len exceeds num_vars"

let random_clause rng ~num_vars ~clause_len =
  (* Distinct variables, random signs. *)
  let vars = Array.init num_vars (fun i -> i + 1) in
  Rng.shuffle_in_place rng vars;
  List.map
    (fun i ->
      let v = vars.(i) in
      if Rng.bool rng then v else -v)
    (Listx.range 0 clause_len)

let uniform rng ~num_vars ~num_clauses ~clause_len =
  check ~num_vars ~num_clauses ~clause_len;
  Cnf.make ~num_vars
    (List.map
       (fun _ -> random_clause rng ~num_vars ~clause_len)
       (Listx.range 0 num_clauses))

let planted rng ~num_vars ~num_clauses ~clause_len =
  check ~num_vars ~num_clauses ~clause_len;
  let plant =
    Array.init (num_vars + 1) (fun i -> i > 0 && Rng.bool rng)
  in
  let rec satisfied_clause () =
    let clause = random_clause rng ~num_vars ~clause_len in
    if Cnf.eval_clause plant clause then clause else satisfied_clause ()
  in
  let clauses =
    List.map (fun _ -> satisfied_clause ()) (Listx.range 0 num_clauses)
  in
  (Cnf.make ~num_vars clauses, plant)
