(* A compact (infinite-execution) goal: keep a drifting plant within
   bounds through an actuator whose command dialect is unknown.  The
   compact universal construction switches strategies on negative
   sensing until the violations stop — "only finitely many
   unacceptable prefixes".

   Run with:  dune exec examples/control_demo.exe *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let alphabet = 4
let horizon = 2000

let trace label user server seed =
  let goal = Control.goal ~alphabet () in
  let history =
    Exec.run ~config:(Exec.config ~horizon ()) ~goal ~user ~server (Rng.make seed)
  in
  let outcome = Outcome.judge goal history in
  let positions =
    List.filter_map
      (fun (r : History.Round.t) -> Msg.int_opt r.world_view)
      (History.rounds history)
  in
  let spark =
    (* A coarse text rendering of |plant| over time, sampled every 100
       rounds: '.' in range, '#' out of range. *)
    String.concat ""
      (List.filteri (fun i _ -> i mod 100 = 0) positions
      |> List.map (fun p -> if abs p <= 10 then "." else "#"))
  in
  Format.printf "%-14s violations=%4d last=%-5s achieved=%-5b |plant| %s@." label
    outcome.Outcome.violations
    (match outcome.Outcome.last_violation with
    | Some r -> string_of_int r
    | None -> "-")
    outcome.Outcome.achieved spark

let () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let server = Control.server ~alphabet (Enum.get_exn dialects 2) in
  Format.printf "plant bound ±10, actuator dialect = rotation 2, horizon %d@.@." horizon;
  trace "universal" (Control.universal_user ~alphabet dialects) server 1;
  trace "oracle" (Control.informed_user ~alphabet (Enum.get_exn dialects 2)) server 2;
  trace "wrong-fixed" (Control.informed_user ~alphabet (Enum.get_exn dialects 0)) server 3;
  trace "uncontrolled"
    (Strategy.stateless ~name:"idle" (fun (_ : Io.User.obs) -> Io.User.silent))
    server 4;
  Format.printf
    "@.reading: each character is 100 rounds; '.' = plant in range, '#' = out of range.@.";
  Format.printf
    "the universal user's '#'s stop once it settles on the right dialect.@."
