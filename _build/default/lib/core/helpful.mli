(** Helpfulness of servers (§2).

    "A server strategy is helpful for the goal and a class of user
    strategies if there is some user strategy U such that when U is
    paired with the server ... the goal is achieved."  The checker below
    is the executable (bounded, Monte-Carlo) version: it searches the
    enumerated user class for a strategy whose success rate over
    independent trials reaches a threshold. *)

type verdict = {
  helpful : bool;
  witness : int option;  (** index of a witnessing user strategy *)
  examined : int;  (** user strategies actually tried *)
}

val check :
  ?config:Exec.config ->
  ?tail_window:int ->
  ?trials:int ->
  ?min_success:float ->
  ?search_limit:int ->
  goal:Goal.t ->
  user_class:Strategy.user Goalcom_automata.Enum.t ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  verdict
(** Defaults: [trials = 3], [min_success = 1.0], [search_limit = 200].
    Each candidate user is judged on [trials] fresh executions against
    every non-deterministic world of the goal. *)

val is_helpful :
  ?config:Exec.config ->
  ?tail_window:int ->
  ?trials:int ->
  ?min_success:float ->
  ?search_limit:int ->
  goal:Goal.t ->
  user_class:Strategy.user Goalcom_automata.Enum.t ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  bool
