(* E13 / Table 7 — the online-learning connection (Juba–Vempala,
   referenced by the paper): for the prediction goal, a server-free
   halving learner sits in the same user class as the ask-the-teacher
   strategies; mistake counts separate the achievers from the rest, and
   every server — even a silent one — is helpful because of the
   learner. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let title = "Prediction goal: mistake bounds across user strategies"

let claim =
  "semantic communication for prediction goals is interchangeable with \
   on-line learning: the halving learner and the ask-the-teacher user \
   are both members of one class, and the universal user wins with \
   either route"

let alphabet = 3
let params = { Prediction.num_attributes = 6 }
let horizon = 1500
let trials = 3

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Prediction.goal ~params ~alphabet () in
  let config = Exec.config ~horizon () in
  let measure label user_of server seed_off =
    let successes = ref 0 and mistake_counts = ref [] in
    List.iter
      (fun t ->
        let outcome, history =
          Exec.run_outcome ~config ~goal ~user:(user_of ()) ~server
            (Rng.make (seed + seed_off + t))
        in
        if outcome.Outcome.achieved then incr successes;
        mistake_counts := float_of_int (Prediction.mistakes history) :: !mistake_counts)
      (Listx.range 0 trials);
    [
      label;
      Table.cell_pct (float_of_int !successes /. float_of_int trials);
      Table.cell_float (Stats.mean !mistake_counts);
    ]
  in
  let teacher0 = Prediction.server ~alphabet (Enum.get_exn dialects 0) in
  let teacher2 = Prediction.server ~alphabet (Enum.get_exn dialects 2) in
  let silent = Transform.silent () in
  let rows =
    [
      measure "informed teacher-user vs teacher"
        (fun () -> Prediction.teacher_user ~params ~alphabet (Enum.get_exn dialects 0))
        teacher0 0;
      measure "wrong-dialect teacher-user vs teacher"
        (fun () -> Prediction.teacher_user ~params ~alphabet (Enum.get_exn dialects 1))
        teacher0 100;
      measure "halving learner vs silent server"
        (fun () -> Prediction.learner_user ~params ())
        silent 200;
      measure "universal vs teacher (dialect 2)"
        (fun () -> Prediction.universal_user ~params ~alphabet dialects)
        teacher2 300;
      measure "universal vs silent server"
        (fun () -> Prediction.universal_user ~params ~alphabet dialects)
        silent 400;
    ]
  in
  Table.make
    ~title:"E13 (Table 7): prediction goal — success and total mistakes"
    ~columns:[ "pairing"; "achieved"; "mean mistakes" ]
    ~notes:
      [
        Printf.sprintf "parity concepts over %d attributes; horizon %d rounds"
          params.Prediction.num_attributes horizon;
        "expected shape: achievers make O(handshake + n) mistakes; the \
         wrong-dialect non-adapter errs on ~half of all rounds forever; \
         the universal user succeeds even with a silent server (the \
         learner is in its class)";
      ]
    rows
