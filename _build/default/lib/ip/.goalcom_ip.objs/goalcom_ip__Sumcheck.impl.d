lib/ip/sumcheck.ml: Arith Array Cnf Gf Goalcom_sat List Poly Printf
