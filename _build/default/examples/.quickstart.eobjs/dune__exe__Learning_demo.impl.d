examples/learning_demo.ml: Dialect Enum Exec Format Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers Outcome Prediction Rng Transform
