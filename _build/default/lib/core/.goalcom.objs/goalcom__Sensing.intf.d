lib/core/sensing.mli: Exec Format Goal Goalcom_prelude History Strategy View
