(** E4 / Figure 2 — measured cost of the Levin universal user against the schedule's analytic worst-case work bound.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
