(* Fixed-size domain pool with a work-stealing deque scheduler.

   One deque per participant (the submitter is participant 0, worker
   domains are 1..width-1).  A batch deals contiguous index chunks
   round-robin into the deques; each participant pops from the head of
   its own deque and, when empty, steals from the *tail* of a victim's
   deque, so skewed chunk costs migrate to idle domains.  The deques
   hold at most a few chunks each, so a plain mutex-protected list is
   both simple and cheap — contention happens per chunk, not per
   task. *)

type chunk = { lo : int; hi : int } (* task indices [lo, hi) *)
type deque = { dq_lock : Mutex.t; mutable items : chunk list }

type batch = {
  deques : deque array;
  exec : int -> unit; (* run task [i] and store its result *)
  remaining : int Atomic.t; (* tasks not yet retired (run or skipped) *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  width : int;
  lock : Mutex.t;
  work_cond : Condition.t; (* workers sleep here between batches *)
  done_cond : Condition.t; (* the submitter sleeps here during drain *)
  mutable current : (int * batch) option; (* (sequence number, batch) *)
  mutable seq : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

(* Cross-pool count of in-flight multi-domain batches, consulted by
   Trace.set_sink to refuse ambient-sink swaps during parallel runs. *)
let batches_in_flight = Atomic.make 0
let active_batches () = Atomic.get batches_in_flight

let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

(* Ambient width: --jobs (via set_default_jobs) beats GOALCOM_JOBS
   beats 1.  Parallelism is strictly opt-in. *)
let jobs_override = ref None

let set_default_jobs j =
  if j <= 0 then invalid_arg "Pool.set_default_jobs: jobs must be positive";
  jobs_override := Some j

let default_jobs () =
  match !jobs_override with
  | Some j -> j
  | None -> (
      match Sys.getenv_opt "GOALCOM_JOBS" with
      | None -> 1
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some j when j > 0 -> j
          | _ -> 1))

let new_deque () = { dq_lock = Mutex.create (); items = [] }

let pop_own d =
  Mutex.lock d.dq_lock;
  let c =
    match d.items with
    | [] -> None
    | c :: rest ->
        d.items <- rest;
        Some c
  in
  Mutex.unlock d.dq_lock;
  c

(* Thieves take the chunk the owner would reach last.  The lists are a
   handful of elements long, so the O(n) tail removal is noise. *)
let steal_from d =
  Mutex.lock d.dq_lock;
  let c =
    match List.rev d.items with
    | [] -> None
    | last :: rev_rest ->
        d.items <- List.rev rev_rest;
        Some last
  in
  Mutex.unlock d.dq_lock;
  c

let steal b ~thief =
  let width = Array.length b.deques in
  let rec try_victim k =
    if k >= width then None
    else
      let v = (thief + k) mod width in
      match steal_from b.deques.(v) with
      | Some _ as c -> c
      | None -> try_victim (k + 1)
  in
  try_victim 1

(* Retire every task of a chunk.  A task runs only while no failure is
   recorded; afterwards the batch drains by skipping, so the submitter
   can re-raise promptly without abandoning bookkeeping. *)
let run_chunk pool b c =
  for i = c.lo to c.hi - 1 do
    (match Atomic.get b.failed with
    | None -> (
        try b.exec i
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set b.failed None (Some (e, bt))))
    | Some _ -> ());
    if Atomic.fetch_and_add b.remaining (-1) = 1 then (
      Mutex.lock pool.lock;
      Condition.broadcast pool.done_cond;
      Mutex.unlock pool.lock)
  done

let rec drain pool b ~me =
  match pop_own b.deques.(me) with
  | Some c ->
      run_chunk pool b c;
      drain pool b ~me
  | None -> (
      match steal b ~thief:me with
      | Some c ->
          run_chunk pool b c;
          drain pool b ~me
      | None -> ())

let worker_loop pool ~me () =
  Domain.DLS.set in_worker_key true;
  let last_seq = ref 0 in
  let rec loop () =
    Mutex.lock pool.lock;
    let rec await () =
      if pool.stopping then None
      else
        match pool.current with
        | Some (seq, b) when seq > !last_seq ->
            last_seq := seq;
            Some b
        | _ ->
            Condition.wait pool.work_cond pool.lock;
            await ()
    in
    let job = await () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some b ->
        drain pool b ~me;
        loop ()
  in
  loop ()

let create ~jobs =
  if jobs <= 0 then invalid_arg "Pool.create: jobs must be positive";
  let pool =
    {
      width = jobs;
      lock = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      current = None;
      seq = 0;
      stopping = false;
      domains = [];
    }
  in
  pool.domains <-
    List.init (jobs - 1) (fun k -> Domain.spawn (worker_loop pool ~me:(k + 1)));
  pool

let jobs t = t.width

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* About four chunks per participant: enough slack for stealing to
   even out skew, few enough that scheduling stays per-chunk cheap. *)
let chunks_of ~width n =
  let per = max 1 ((n + (width * 4) - 1) / (width * 4)) in
  let rec go lo acc = if lo >= n then List.rev acc
    else go (lo + per) ({ lo; hi = min n (lo + per) } :: acc)
  in
  go 0 []

let run (type a) t (tasks : (unit -> a) array) : a array =
  let n = Array.length tasks in
  if t.stopping then invalid_arg "Pool.run: pool is shut down";
  if n = 0 then [||]
  else if t.width = 1 then (
    (* The exact sequential path: index order on the calling domain,
       first exception propagating as-is. *)
    let results = Array.make n None in
    for i = 0 to n - 1 do
      results.(i) <- Some (tasks.(i) ())
    done;
    Array.map Option.get results)
  else (
    let results = Array.make n None in
    let b =
      {
        deques = Array.init t.width (fun _ -> new_deque ());
        exec = (fun i -> results.(i) <- Some (tasks.(i) ()));
        remaining = Atomic.make n;
        failed = Atomic.make None;
      }
    in
    List.iteri
      (fun k c ->
        let d = b.deques.(k mod t.width) in
        d.items <- d.items @ [ c ])
      (chunks_of ~width:t.width n);
    Atomic.incr batches_in_flight;
    Mutex.lock t.lock;
    if Option.is_some t.current then (
      Mutex.unlock t.lock;
      Atomic.decr batches_in_flight;
      invalid_arg "Pool.run: pool is busy (nested run from a task?)");
    t.seq <- t.seq + 1;
    t.current <- Some (t.seq, b);
    Condition.broadcast t.work_cond;
    Mutex.unlock t.lock;
    (* While draining, the submitting domain is a batch participant too:
       its tasks may install domain-local trace sinks, which the Trace
       guard permits only for participants (see [in_worker]). *)
    let was_worker = Domain.DLS.get in_worker_key in
    Domain.DLS.set in_worker_key true;
    drain t b ~me:0;
    Domain.DLS.set in_worker_key was_worker;
    Mutex.lock t.lock;
    while Atomic.get b.remaining > 0 do
      Condition.wait t.done_cond t.lock
    done;
    t.current <- None;
    Mutex.unlock t.lock;
    Atomic.decr batches_in_flight;
    match Atomic.get b.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map Option.get results)

let map_array t f xs = run t (Array.map (fun x () -> f x) xs)
let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
