lib/harness/e01_universality.mli: Goalcom_prelude
