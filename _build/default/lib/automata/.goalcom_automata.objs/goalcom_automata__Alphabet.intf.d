lib/automata/alphabet.mli:
