(** E19 — the network matrix: topology routing, probabilistic
    forwarding, and goal-oriented multiple access (lib/net) measured
    end-to-end.  See EXPERIMENTS.md. *)

open Goalcom_prelude
module Session := Goalcom_session

val title : string
val claim : string

val run : seed:int -> Table.t

(** {1 Building blocks shared with the CLI, bench and tests} *)

val alphabet : int
(** Command alphabet of the topo/forward dialect classes. *)

val topo_cases : unit -> (string * Goalcom_net.Topo.scenario) list

(** One multiple-access population: [users] stations, each a universal
    user Levin-racing the transmission-policy class over its own port
    of one shared {!Goalcom_net.Medium}. *)
type mac_run = {
  report : Session.Engine.report;
  slots : int;
  successes : int;
  collisions : int;
  idles : int;
}

val mac_max_period : users:int -> int
val mac_doc : int -> int list
(** Station [i]'s payload word. *)

val run_mac :
  ?jobs:int ->
  ?chaos:Session.Chaos.t ->
  ?max_ticks:int ->
  users:int ->
  seed:int ->
  unit ->
  mac_run

val population :
  ?mac_users:int ->
  sessions:int ->
  unit ->
  Session.Engine.spec array * Session.Engine.group list
(** The [goalcom serve --mix net] population: the first [mac_users]
    (default 8, capped at [sessions]) sessions form shared-medium
    groups of four, the rest alternate topology and forwarding
    universal sessions with server dialects cycled. *)
