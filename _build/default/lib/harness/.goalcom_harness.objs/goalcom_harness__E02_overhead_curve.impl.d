lib/harness/e02_overhead_curve.ml: Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Hashtbl Levin List Listx Printing Table Trial
