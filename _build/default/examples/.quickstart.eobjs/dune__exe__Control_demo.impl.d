examples/control_demo.ml: Control Dialect Enum Exec Format Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude History Io List Msg Outcome Rng Strategy String
