(* Tests for the password goal: universality holds, but the enumeration
   overhead is unavoidable. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let goal = Password.goal ()

let run ~user ~server ?(horizon = 3000) seed =
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_informed_unlocks_fast () =
  let server = Password.server_with_password 13 in
  let user = Password.informed_user 13 in
  let outcome, history = run ~user ~server 1 in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved;
  Alcotest.(check bool) "fast" true (History.length history <= 10)

let test_wrong_guess_never_unlocks () =
  let server = Password.server_with_password 13 in
  let user = Password.informed_user 14 in
  let outcome, _ = run ~user ~server 2 in
  Alcotest.(check bool) "not achieved" false outcome.Outcome.achieved

let test_no_feedback_on_wrong_guess () =
  (* The lock is silent until the right guess: wrong guesses produce no
     user-visible signal whatsoever. *)
  let server = Password.server_with_password 5 in
  let user = Password.informed_user 4 in
  let _, history = run ~user ~server ~horizon:50 3 in
  List.iter
    (fun (r : History.Round.t) ->
      Alcotest.(check bool) "server stays silent" true
        (Msg.is_silence r.server_to_user && Msg.is_silence r.server_to_world))
    (History.rounds history)

let test_sweeper_unlocks_everything () =
  let space = 32 in
  List.iter
    (fun w ->
      let server = Password.server_with_password w in
      let user = Password.sweeper ~space in
      let outcome, history = run ~user ~server (100 + w) in
      Alcotest.(check bool) (Printf.sprintf "password %d" w) true
        outcome.Outcome.achieved;
      (* Cost grows with the position of the secret. *)
      Alcotest.(check bool) "cost >= w" true (History.length history >= w))
    [ 0; 7; 15; 31 ]

let test_universal_unlocks () =
  let space = 8 in
  List.iter
    (fun w ->
      let server = Password.server_with_password w in
      let user = Password.universal_user ~space () in
      let outcome, _ = run ~user ~server ~horizon:4000 (200 + w) in
      Alcotest.(check bool) (Printf.sprintf "password %d" w) true
        outcome.Outcome.achieved)
    [ 0; 3; 7 ]

let test_overhead_grows_with_space () =
  (* The mean unlock cost of the sweeping universal strategy grows
     linearly in the secret's position — the lower-bound phenomenon. *)
  let space = 64 in
  let cost w =
    let server = Password.server_with_password w in
    let user = Password.sweeper ~space in
    let _, history = run ~user ~server (300 + w) in
    History.length history
  in
  Alcotest.(check bool) "monotone overhead" true (cost 60 > cost 30);
  Alcotest.(check bool) "monotone overhead" true (cost 30 > cost 5)

let test_every_lock_is_helpful () =
  let space = 6 in
  let user_class = Password.user_class ~space in
  List.iter
    (fun w ->
      let verdict =
        Helpful.check
          ~config:(Exec.config ~horizon:200 ())
          ~goal ~user_class
          ~server:(Password.server_with_password w)
          (Rng.make (400 + w))
      in
      Alcotest.(check bool) (Printf.sprintf "lock %d helpful" w) true
        verdict.Helpful.helpful;
      Alcotest.(check (option int))
        (Printf.sprintf "witness is guesser %d" w)
        (Some w) verdict.Helpful.witness)
    (Listx.range 0 space)

let test_sensing_safe_and_viable () =
  let space = 5 in
  let servers = Enum.to_list (Password.server_class ~space) in
  let users = Enum.to_list (Password.user_class ~space) in
  let config = Exec.config ~horizon:100 () in
  let safety =
    Sensing.check_safety_finite ~config ~goal ~users ~servers Password.sensing
      (Rng.make 5)
  in
  Alcotest.(check bool) "safety" true safety.Sensing.holds;
  let user_for server =
    match
      Listx.find_index
        (fun s -> Strategy.name s = Strategy.name server)
        servers
    with
    | Some w -> Password.informed_user w
    | None -> Alcotest.fail "unknown server"
  in
  let viability =
    Sensing.check_viability_finite ~config ~goal ~user_for ~servers
      Password.sensing (Rng.make 6)
  in
  Alcotest.(check bool) "viability" true viability.Sensing.holds

let test_validation () =
  Alcotest.check_raises "negative password"
    (Invalid_argument "Password.server_with_password: negative") (fun () ->
      ignore (Password.server_with_password (-1)));
  Alcotest.check_raises "empty space"
    (Invalid_argument "Password.user_class: empty space") (fun () ->
      ignore (Password.user_class ~space:0))

let () =
  Alcotest.run "password"
    [
      ( "password",
        [
          Alcotest.test_case "informed unlocks fast" `Quick test_informed_unlocks_fast;
          Alcotest.test_case "wrong guess fails" `Quick test_wrong_guess_never_unlocks;
          Alcotest.test_case "no feedback on wrong guess" `Quick test_no_feedback_on_wrong_guess;
          Alcotest.test_case "sweeper unlocks everything" `Quick test_sweeper_unlocks_everything;
          Alcotest.test_case "universal unlocks" `Quick test_universal_unlocks;
          Alcotest.test_case "overhead grows with space" `Quick test_overhead_grows_with_space;
          Alcotest.test_case "every lock is helpful" `Quick test_every_lock_is_helpful;
          Alcotest.test_case "sensing safe+viable" `Quick test_sensing_safe_and_viable;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
