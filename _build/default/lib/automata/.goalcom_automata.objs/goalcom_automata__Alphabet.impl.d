lib/automata/alphabet.ml: Array Goalcom_prelude List Listx String
