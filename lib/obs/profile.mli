(** Profile exports: attributed spans rendered to Chrome's trace-event
    JSON and to CSV.

    Traces carry no wall clock by design (same seed ⇒ bit-identical
    trace), so the timeline uses {e round numbers as deterministic
    logical time}: one round = one microsecond tick, a span's [ts] is
    its first round and [dur] its round count.  Runs of a batch map to
    threads (tid = 1-based run ordinal) of a single process; span
    counters ride along in [args]; enumeration moves, faults, halts and
    violations appear as instant marks.  Load the JSON in
    [chrome://tracing] or Perfetto. *)

val chrome_of_events : Goalcom.Trace.event list -> string
(** The complete JSON document ([{"traceEvents":[...]}]). *)

val csv_of_events : Goalcom.Trace.event list -> string
(** Header plus one row per span, batch-wide. *)
