(* Tests for the prediction goal: mistake bounds, the halving learner,
   teacher delegation, and universality over a heterogeneous class
   (teachers for every dialect + a server-free learner). *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let alphabet = 3
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i
let params = { Prediction.num_attributes = 5 }
let goal = Prediction.goal ~params ~alphabet ()

let run ~user ~server ?(horizon = 1200) seed =
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_teacher_user_with_matching_dialect () =
  List.iter
    (fun i ->
      let user = Prediction.teacher_user ~params ~alphabet (dialect i) in
      let server = Prediction.server ~alphabet (dialect i) in
      let outcome, history = run ~user ~server (10 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d achieves" i)
        true outcome.Outcome.achieved;
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d: few mistakes" i)
        true
        (Prediction.mistakes history < 12))
    (Listx.range 0 alphabet)

let test_teacher_user_wrong_dialect_fails () =
  let user = Prediction.teacher_user ~params ~alphabet (dialect 1) in
  let server = Prediction.server ~alphabet (dialect 0) in
  let outcome, history = run ~user ~server 20 in
  Alcotest.(check bool) "fails" false outcome.Outcome.achieved;
  (* Predicting the constant 0 against random parities errs ~half the
     time, forever. *)
  Alcotest.(check bool) "many mistakes" true (Prediction.mistakes history > 100)

let test_learner_needs_no_server () =
  let user = Prediction.learner_user ~params () in
  let server =
    Strategy.stateless ~name:"absent" (fun (_ : Io.Server.obs) -> Io.Server.silent)
  in
  let outcome, history = run ~user ~server 30 in
  Alcotest.(check bool) "achieved without a server" true outcome.Outcome.achieved;
  (* Halving learner: at most num_attributes mistakes once feedback
     flows (plus the unscored warm-up rounds). *)
  Alcotest.(check bool)
    (Printf.sprintf "mistake bound (made %d)" (Prediction.mistakes history))
    true
    (Prediction.mistakes history <= params.Prediction.num_attributes + 2)

let test_learner_beats_mistake_bound_repeatedly () =
  List.iter
    (fun seed ->
      let user = Prediction.learner_user ~params () in
      let server = Transform.silent () in
      let _, history = run ~user ~server seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d within bound" seed)
        true
        (Prediction.mistakes history <= params.Prediction.num_attributes + 2))
    [ 41; 42; 43; 44; 45 ]

let test_universal_with_teacher_servers () =
  List.iter
    (fun i ->
      let user = Prediction.universal_user ~params ~alphabet dialects in
      let server = Prediction.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server ~horizon:2500 (50 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "universal vs teacher %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_universal_with_useless_server () =
  (* Even a silent server is "helpful" for this goal — the learner in
     the class needs nothing — so the universal user must still win. *)
  let user = Prediction.universal_user ~params ~alphabet dialects in
  let outcome, _ = run ~user ~server:(Transform.silent ()) ~horizon:2500 60 in
  Alcotest.(check bool) "achieved via the learner" true outcome.Outcome.achieved

let test_every_server_is_helpful () =
  let user_class = Prediction.user_class ~params ~alphabet dialects in
  List.iter
    (fun (label, server) ->
      let verdict =
        Helpful.check
          ~config:(Exec.config ~horizon:1200 ())
          ~trials:1 ~goal ~user_class ~server (Rng.make 70)
      in
      Alcotest.(check bool) (label ^ " helpful") true verdict.Helpful.helpful)
    [
      ("teacher", Prediction.server ~alphabet (dialect 0));
      ("silent", Transform.silent ());
    ]

let test_parity_world_scoring () =
  (* Drive the raw world: silence predictions must register as
     mistakes once scoring starts. *)
  let w = Prediction.world ~params () in
  let inst = World.Instance.create w in
  let rng = Rng.make 80 in
  let step () =
    ignore
      (World.Instance.step rng inst
         { Io.World.from_user = Msg.Silence; from_server = Msg.Silence });
    World.Instance.view inst
  in
  let v1 = step () in
  let v2 = step () in
  let v3 = step () in
  Alcotest.(check bool) "no score in warm-up" true
    (v1 = Msg.Int 1 && v2 = Msg.Int 1);
  Alcotest.(check bool) "silence scored as mistake" true (v3 = Msg.Int 0)

let test_sensing_negative_on_mistake () =
  let user = Prediction.teacher_user ~params ~alphabet (dialect 1) in
  let server = Prediction.server ~alphabet (dialect 0) in
  let history =
    Exec.run ~config:(Exec.config ~horizon:300 ()) ~goal ~user ~server
      (Rng.make 90)
  in
  let negatives =
    Listx.count (fun (_, v) -> v = Sensing.Negative)
      (Sensing.verdicts Prediction.sensing history)
  in
  (* A constant-0 predictor errs about half the time. *)
  Alcotest.(check bool)
    (Printf.sprintf "negatives track mistakes (%d)" negatives)
    true
    (negatives > 60 && negatives < 240)

let test_params_validation () =
  Alcotest.check_raises "too many attributes"
    (Invalid_argument "Prediction: num_attributes must be in 1..14") (fun () ->
      ignore (Prediction.world ~params:{ Prediction.num_attributes = 20 } ()))

let () =
  Alcotest.run "prediction"
    [
      ( "prediction",
        [
          Alcotest.test_case "teacher user (matching)" `Quick test_teacher_user_with_matching_dialect;
          Alcotest.test_case "teacher user (wrong) fails" `Quick test_teacher_user_wrong_dialect_fails;
          Alcotest.test_case "learner needs no server" `Quick test_learner_needs_no_server;
          Alcotest.test_case "learner mistake bound" `Quick test_learner_beats_mistake_bound_repeatedly;
          Alcotest.test_case "universal vs teachers" `Quick test_universal_with_teacher_servers;
          Alcotest.test_case "universal vs silent server" `Quick test_universal_with_useless_server;
          Alcotest.test_case "every server helpful" `Quick test_every_server_is_helpful;
          Alcotest.test_case "world scoring" `Quick test_parity_world_scoring;
          Alcotest.test_case "sensing on mistakes" `Quick test_sensing_negative_on_mistake;
          Alcotest.test_case "params validation" `Quick test_params_validation;
        ] );
    ]
