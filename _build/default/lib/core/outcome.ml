open Goalcom_prelude

type t = {
  achieved : bool;
  halted : bool;
  halt_round : int option;
  rounds : int;
  violations : int;
  violation_rounds : int list;
  last_violation : int option;
}

let judge ?tail_window (goal : Goal.t) history =
  let rounds = History.length history in
  let halted = History.halted history in
  let halt_round = History.halt_round history in
  let violation_rounds = Referee.violations goal.referee history in
  let last_violation = Listx.last_opt violation_rounds in
  let achieved =
    match goal.referee with
    | Referee.Finite _ ->
        halted && Referee.decide_finite goal.referee history
    | Referee.Compact _ ->
        let window =
          match tail_window with
          | Some w -> max 1 w
          | None -> max 1 (rounds / 5)
        in
        let cutoff = rounds - window in
        rounds > 0 && not (List.exists (fun r -> r > cutoff) violation_rounds)
  in
  {
    achieved;
    halted;
    halt_round;
    rounds;
    violations = List.length violation_rounds;
    violation_rounds;
    last_violation;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<h>{achieved=%b; halted=%b; rounds=%d; violations=%d; last_violation=%s}@]"
    t.achieved t.halted t.rounds t.violations
    (match t.last_violation with None -> "-" | Some r -> string_of_int r)
