lib/core/outcome.ml: Format Goal Goalcom_prelude History List Listx Referee
