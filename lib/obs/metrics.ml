open Goalcom

(* Symbols-on-the-wire weight of a message: atoms count 1, texts their
   length, silence nothing.  This is the per-round channel usage the
   paper's overhead statements are about (number of symbols exchanged),
   not an OCaml heap size. *)
let rec msg_weight = function
  | Msg.Silence -> 0
  | Msg.Sym _ | Msg.Int _ -> 1
  | Msg.Text s -> String.length s
  | Msg.Pair (a, b) -> msg_weight a + msg_weight b
  | Msg.Seq ms -> List.fold_left (fun acc m -> acc + msg_weight m) 0 ms

type timing = {
  timed : int;
  total_s : float;
  mean_s : float;
  min_s : float;
  max_s : float;
  buckets : int array;
}

(* Round durations land in log10 buckets: <1µs, <10µs, ..., <1s, ≥1s. *)
let num_buckets = 8

let bucket_of_duration d =
  let rec go i lim = if i >= num_buckets - 1 || d < lim then i else go (i + 1) (lim *. 10.) in
  go 0 1e-6

let bucket_label i =
  if i >= num_buckets - 1 then ">=100ms"
  else begin
    let labels = [| "<1us"; "<10us"; "<100us"; "<1ms"; "<10ms"; "<100ms" |] in
    if i < Array.length labels then labels.(i) else "<1s"
  end

type summary = {
  runs : int;
  rounds : int;
  halts : int;
  user_msgs : int;
  server_msgs : int;
  world_msgs : int;
  wire_symbols : int;
  senses : int;
  negatives : int;
  switches : int;
  resumes : int;
  sessions : int;
  faults : int;
  violations : int;
  round_timing : timing option;
}

type t = {
  clock : (unit -> float) option;
  mutable runs : int;
  mutable rounds : int;
  mutable halts : int;
  mutable user_msgs : int;
  mutable server_msgs : int;
  mutable world_msgs : int;
  mutable wire_symbols : int;
  mutable senses : int;
  mutable negatives : int;
  mutable switches : int;
  mutable resumes : int;
  mutable sessions : int;
  mutable faults : int;
  mutable violations : int;
  (* round timing; [round_open] guards against stamping across runs *)
  mutable round_open : bool;
  mutable round_stamp : float;
  mutable timed : int;
  mutable time_total : float;
  mutable time_min : float;
  mutable time_max : float;
  buckets : int array;
}

let create ?clock () =
  {
    clock;
    runs = 0;
    rounds = 0;
    halts = 0;
    user_msgs = 0;
    server_msgs = 0;
    world_msgs = 0;
    wire_symbols = 0;
    senses = 0;
    negatives = 0;
    switches = 0;
    resumes = 0;
    sessions = 0;
    faults = 0;
    violations = 0;
    round_open = false;
    round_stamp = 0.;
    timed = 0;
    time_total = 0.;
    time_min = infinity;
    time_max = neg_infinity;
    buckets = Array.make num_buckets 0;
  }

let close_round t now =
  if t.round_open then begin
    let d = now -. t.round_stamp in
    t.timed <- t.timed + 1;
    t.time_total <- t.time_total +. d;
    if d < t.time_min then t.time_min <- d;
    if d > t.time_max then t.time_max <- d;
    let b = bucket_of_duration d in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.round_open <- false
  end

let observe t (ev : Trace.event) =
  match ev with
  | Trace.Run_start _ -> t.runs <- t.runs + 1
  | Trace.Round_start _ -> begin
      t.rounds <- t.rounds + 1;
      match t.clock with
      | None -> ()
      | Some clock ->
          let now = clock () in
          close_round t now;
          t.round_open <- true;
          t.round_stamp <- now
    end
  | Trace.Emit { src; msg; _ } -> begin
      t.wire_symbols <- t.wire_symbols + msg_weight msg;
      match src with
      | Trace.User -> t.user_msgs <- t.user_msgs + 1
      | Trace.Server -> t.server_msgs <- t.server_msgs + 1
      | Trace.World -> t.world_msgs <- t.world_msgs + 1
    end
  | Trace.Halt _ -> t.halts <- t.halts + 1
  | Trace.Sense { positive; _ } ->
      t.senses <- t.senses + 1;
      if not positive then t.negatives <- t.negatives + 1
  | Trace.Switch _ -> t.switches <- t.switches + 1
  | Trace.Resume _ -> t.resumes <- t.resumes + 1
  | Trace.Session _ -> t.sessions <- t.sessions + 1
  | Trace.Fault _ -> t.faults <- t.faults + 1
  | Trace.Violation _ -> t.violations <- t.violations + 1
  | Trace.Run_end _ -> begin
      match t.clock with
      | None -> ()
      | Some clock -> close_round t (clock ())
    end
  (* Engine-level supervision events are aggregated by lib/session's
     own reporting, not by the per-run meter. *)
  | Trace.Supervise _ -> ()
  (* Warm-start cache decisions likewise. *)
  | Trace.Warm _ -> ()

let sink t = observe t

(* Counters are all additive, so absorbing a quiescent meter is a sum;
   timing combines totals and extremes.  Any round still open in [src]
   (its trace ended without Run_end) is dropped, same as [summary]
   would drop it. *)
let merge ~into:dst src =
  dst.runs <- dst.runs + src.runs;
  dst.rounds <- dst.rounds + src.rounds;
  dst.halts <- dst.halts + src.halts;
  dst.user_msgs <- dst.user_msgs + src.user_msgs;
  dst.server_msgs <- dst.server_msgs + src.server_msgs;
  dst.world_msgs <- dst.world_msgs + src.world_msgs;
  dst.wire_symbols <- dst.wire_symbols + src.wire_symbols;
  dst.senses <- dst.senses + src.senses;
  dst.negatives <- dst.negatives + src.negatives;
  dst.switches <- dst.switches + src.switches;
  dst.resumes <- dst.resumes + src.resumes;
  dst.sessions <- dst.sessions + src.sessions;
  dst.faults <- dst.faults + src.faults;
  dst.violations <- dst.violations + src.violations;
  dst.timed <- dst.timed + src.timed;
  dst.time_total <- dst.time_total +. src.time_total;
  if src.time_min < dst.time_min then dst.time_min <- src.time_min;
  if src.time_max > dst.time_max then dst.time_max <- src.time_max;
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets

let summary t =
  {
    runs = t.runs;
    rounds = t.rounds;
    halts = t.halts;
    user_msgs = t.user_msgs;
    server_msgs = t.server_msgs;
    world_msgs = t.world_msgs;
    wire_symbols = t.wire_symbols;
    senses = t.senses;
    negatives = t.negatives;
    switches = t.switches;
    resumes = t.resumes;
    sessions = t.sessions;
    faults = t.faults;
    violations = t.violations;
    round_timing =
      (if t.timed = 0 then None
       else
         Some
           {
             timed = t.timed;
             total_s = t.time_total;
             mean_s = t.time_total /. float_of_int t.timed;
             min_s = t.time_min;
             max_s = t.time_max;
             buckets = Array.copy t.buckets;
           });
  }

let of_events events =
  let t = create () in
  List.iter (observe t) events;
  summary t

let to_table (s : summary) =
  [
    ("runs", string_of_int s.runs);
    ("rounds", string_of_int s.rounds);
    ("halts", string_of_int s.halts);
    ("user msgs", string_of_int s.user_msgs);
    ("server msgs", string_of_int s.server_msgs);
    ("world msgs", string_of_int s.world_msgs);
    ("wire symbols", string_of_int s.wire_symbols);
    ("sense verdicts", string_of_int s.senses);
    ("  negative", string_of_int s.negatives);
    ("switches", string_of_int s.switches);
    ("resumes", string_of_int s.resumes);
    ("sessions", string_of_int s.sessions);
    ("faults", string_of_int s.faults);
    ("violations", string_of_int s.violations);
  ]
  @
  match s.round_timing with
  | None -> []
  | Some tm ->
      [
        ("rounds timed", string_of_int tm.timed);
        ("round mean", Printf.sprintf "%.2fus" (tm.mean_s *. 1e6));
        ("round min", Printf.sprintf "%.2fus" (tm.min_s *. 1e6));
        ("round max", Printf.sprintf "%.2fus" (tm.max_s *. 1e6));
      ]

let pp ppf (s : summary) =
  let rows = to_table s in
  let width =
    List.fold_left (fun w (k, _) -> max w (String.length k)) 0 rows
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-*s %s" width k v)
    rows;
  (match s.round_timing with
  | Some tm when tm.timed > 0 ->
      Format.fprintf ppf "@,%-*s " width "round histo";
      Array.iteri
        (fun i n ->
          if n > 0 then Format.fprintf ppf "%s:%d " (bucket_label i) n)
        tm.buckets
  | _ -> ());
  Format.fprintf ppf "@]"
