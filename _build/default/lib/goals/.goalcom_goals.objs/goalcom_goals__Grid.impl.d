lib/goals/grid.ml: Hashtbl List Queue
