lib/core/multi_session.mli: Goal Goalcom_automata History Msg Sensing Strategy
