# Tier-1 verification in one command: `make check`.

.PHONY: all build test check ci bench bench-check clean

all: build

build:
	dune build

test:
	dune runtest

# Everything the CI gate requires, in order.
check: build test

# Mirror of .github/workflows/ci.yml: build, test, trace smoke +
# analytics, golden drift, bench gate. Run before pushing.
ci: check
	dune exec bin/main.exe -- run e1 --trace /tmp/e1.jsonl
	test -s /tmp/e1.jsonl
	head -1 /tmp/e1.jsonl | grep -q '^{"ev":"'
	dune exec bin/main.exe -- trace stats /tmp/e1.jsonl
	dune exec bin/main.exe -- trace attribution /tmp/e1.jsonl
	dune exec bin/main.exe -- trace diff /tmp/e1.jsonl /tmp/e1.jsonl
	dune exec bin/main.exe -- trace-golden test/golden
	git diff --exit-code test/golden
	BENCH_CHECK_ROUNDS=5 BENCH_CHECK_BUDGET=0.01 dune exec bench/main.exe -- --check

# Regenerates every experiment table, runs the bechamel kernels, and
# rewrites the BENCH_*.json baselines (fault-layer timings and tracing
# overhead) that `bench-check` gates against.
bench:
	dune exec bench/main.exe

# The perf-regression gate: quick re-measure, compare against the
# committed BENCH_trace.json, write BENCH_check.json, exit 1 on any
# regression.
bench-check:
	dune exec bench/main.exe -- --check

clean:
	dune clean
