(** Trial runners: repeated executions with derived seeds, aggregated.

    Every experiment reduces to "pair this user with that server on this
    goal, run [n] trials, report success rate and rounds-to-success";
    this module is that reduction. *)

open Goalcom

type result = {
  successes : int;
  trials : int;
  success_rate : float;
  rounds_to_success : float list;
      (** halting round (finite goals) or settling round (compact:
          round of the last referee violation) of the successful
          trials *)
  mean_rounds : float;  (** mean of [rounds_to_success]; [nan] if none *)
  unsafe_halts : int;
      (** trials where the user halted yet the referee rejects — a
          sensing-safety violation (finite goals; always 0 when sensing
          is safe) *)
}

val run :
  ?config:Exec.config ->
  ?tail_window:int ->
  trials:int ->
  seed:int ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  unit ->
  result
(** Trial [i] runs with an independent generator derived from
    [seed] and pairs the user with world choice [i mod num_worlds]
    (so non-deterministic worlds are cycled).
    @raise Invalid_argument if [trials <= 0]. *)

val pp : Format.formatter -> result -> unit
