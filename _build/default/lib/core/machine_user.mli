(** Interpreting finite-state transducers as strategies.

    Theorem 1 quantifies over {e any} enumerable class of user
    strategies.  The goal modules build convenient parameterised classes
    (one informed user per dialect), but the construction is equally
    happy with a raw Gödel numbering of finite-state machines — this
    module provides that bridge: a {!Goalcom_automata.Mealy.t} plus a
    pair of codecs becomes a {!Strategy.user} (or server), and a machine
    enumeration becomes a strategy class.

    The codec discretises the observation into the machine's input
    alphabet and renders the machine's output symbol as an action; the
    machine's own state evolution supplies the memory. *)

open Goalcom_automata

type 'obs reader = 'obs -> int
(** Discretise an observation into a machine input symbol; must return
    values in [0 .. inputs-1]. *)

type 'act writer = int -> 'act
(** Render a machine output symbol as an action. *)

val user_of_mealy :
  ?name:string ->
  read:Io.User.obs reader ->
  write:Io.User.act writer ->
  Mealy.t ->
  Strategy.user
(** [user_of_mealy ~read ~write m] runs [m] from state 0; each round the
    observation is read, the machine steps, and the output symbol is
    written.  @raise Invalid_argument (at construction) if the machine
    has no states; out-of-range [read] results raise at run time. *)

val server_of_mealy :
  ?name:string ->
  read:Io.Server.obs reader ->
  write:Io.Server.act writer ->
  Mealy.t ->
  Strategy.server

val user_class :
  ?name:string ->
  read:Io.User.obs reader ->
  write:Io.User.act writer ->
  Mealy.t Goalcom_automata.Enum.t ->
  Strategy.user Goalcom_automata.Enum.t
(** A user class from a machine enumeration — e.g.
    [Mealy.enumerate_up_to ~max_states:2 ~inputs ~outputs], giving the
    universal constructions a genuinely machine-indexed class. *)

(** Ready-made codecs for the common "world feedback in, world message
    out" shape. *)

val read_world_int : cap:int -> Io.User.obs reader
(** Reads [Int n] from the world as [min (max n 0) (cap-1)]; anything
    else (including silence) reads as 0.  Input alphabet size: [cap]. *)

val write_world_sym : Io.User.act writer
(** Writes output symbol [s] as [Sym s] to the world. *)

val write_server_sym : Io.User.act writer
(** Writes output symbol [s] as [Sym s] to the server. *)
