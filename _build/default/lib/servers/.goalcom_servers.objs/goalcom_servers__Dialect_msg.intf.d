lib/servers/dialect_msg.mli: Dialect Goalcom Goalcom_automata Msg
