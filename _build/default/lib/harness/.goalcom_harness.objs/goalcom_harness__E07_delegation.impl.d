lib/harness/e07_delegation.ml: Delegation Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers History List Listx Outcome Printf Rng Stats Table Transform
