lib/core/sensing.ml: Exec Format Goal Goalcom_prelude History Io List Listx Outcome Printf Rng Strategy View
