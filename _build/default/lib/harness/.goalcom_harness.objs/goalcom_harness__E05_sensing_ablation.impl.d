lib/harness/e05_sensing_ablation.ml: Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude List Listx Outcome Printing Rng Sensing Table Universal
