(* goalcom — CLI for the goal-oriented-communication library.

   Subcommands:
     list                      enumerate the experiment registry
     run <id> [--seed] [--csv] run one experiment ([--trace FILE] writes
                               a JSONL execution trace; [--jobs N] sets
                               the domain count for parallel entry points)
     all [--seed] [--jobs N]   run every experiment (fanning the registry
                               across N domains; results are identical)
     demo <goal> [options]     run one goal with a chosen user and report
                               ([--trace] streams events and metrics)
     check <goal>              validate sensing safety/viability and
                               helpfulness for a goal's server class
     serve [options]           multiplex a session population through the
                               supervised engine (admission, restarts,
                               breakers) with no chaos
     chaos run|matrix          deterministic chaos harness: fault/kill
                               schedules over the engine, determinism
                               checks, the E18 matrix
     warm record|show          warm-start stores: record winning
                               candidate indices from a cold run;
                               serve/chaos --warm probes them first
     top                       live fleet stats: in-place rollup table over
                               a running serve (--stats FILE) or an
                               internal population
     trace-golden <dir>        regenerate the golden trace files
     trace stats|attribution|sessions|diff|export
                               analytics over recorded JSONL traces *)

open Cmdliner
open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_harness

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Domain count for the parallel entry points (overrides \
                 $(b,GOALCOM_JOBS); the default is 1, fully sequential).  \
                 Every experiment is bit-identical for every value — only \
                 the wall-clock changes.")

let apply_jobs jobs = Option.iter Goalcom_par.Pool.set_default_jobs jobs

(* list *)

let list_cmd =
  let run () =
    let rows =
      List.map
        (fun (e : Experiment.t) ->
          [ e.id; Experiment.kind_to_string e.kind; e.title ])
        Experiment.all
    in
    Table.print
      (Table.make ~title:"experiments" ~columns:[ "id"; "kind"; "title" ] rows)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiment registry.")
    Term.(const run $ const ())

(* run *)

let run_cmd =
  let id_arg =
    (* The docv range tracks the registry, not a hand-written constant. *)
    let ids_doc =
      match Experiment.all with
      | [] -> "Experiment id."
      | es ->
          Printf.sprintf "Experiment id (%s..%s)." (List.hd es).Experiment.id
            (Listx.last es).Experiment.id
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:ids_doc)
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a JSONL execution trace of every run the \
                   experiment performs to $(docv).")
  in
  let run id seed csv trace jobs =
    apply_jobs jobs;
    match Experiment.find id with
    | None ->
        Printf.eprintf "unknown experiment %S; try `goalcom list`\n" id;
        exit 1
    | Some e ->
        Printf.printf "# %s — %s\n# claim: %s\n%!" e.Experiment.id
          e.Experiment.title e.Experiment.claim;
        let render () =
          let table = e.Experiment.run ~seed in
          if csv then print_string (Table.to_csv table) else Table.print table
        in
        (match trace with
        | None -> render ()
        | Some path ->
            Goalcom_obs.Jsonl.with_file path (fun sink ->
                Trace.with_sink sink render))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment.")
    Term.(const run $ id_arg $ seed_arg $ csv_arg $ trace_arg $ jobs_arg)

(* all *)

let all_cmd =
  let run seed jobs =
    apply_jobs jobs;
    (* Compute the whole registry through the pool (sequentially when
       jobs is 1), then print in registry order. *)
    let tables = Experiment.run_par ~seed Experiment.all in
    List.iter2
      (fun (e : Experiment.t) table ->
        Printf.printf "# %s — %s\n%!" e.id e.title;
        Table.print table)
      Experiment.all tables
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(const run $ seed_arg $ jobs_arg)

(* demo *)

let goal_conv =
  Arg.enum
    [
      ("printing", `Printing); ("maze", `Maze); ("control", `Control);
      ("password", `Password); ("delegation", `Delegation); ("transfer", `Transfer);
      ("prediction", `Prediction); ("counting", `Counting);
    ]

let user_conv =
  Arg.enum
    [
      ("universal", `Universal); ("oracle", `Oracle); ("fixed", `Fixed);
      ("random", `Random);
    ]

let demo_cmd =
  let goal_arg =
    Arg.(required & pos 0 (some goal_conv) None
         & info [] ~docv:"GOAL"
             ~doc:"One of printing, maze, control, password, delegation, transfer.")
  in
  let user_arg =
    Arg.(value & opt user_conv `Universal
         & info [ "user" ] ~docv:"USER" ~doc:"universal | oracle | fixed | random.")
  in
  let dialect_arg =
    Arg.(value & opt int 1
         & info [ "dialect" ] ~docv:"K"
             ~doc:"Index of the server's dialect (or the password).")
  in
  let horizon_arg =
    Arg.(value & opt int 8000 & info [ "horizon" ] ~docv:"N" ~doc:"Round budget.")
  in
  let fault_arg =
    Arg.(value & opt_all string []
         & info [ "fault" ] ~docv:"SPEC"
             ~doc:"Wrap the server in a fault stack (repeatable; outermost \
                   first).  Specs: nop, delay:K, drop:P, dup, corrupt:P, \
                   reorder:K, burst:PE,PX,PD, crash:K, intermittent:ON,OFF, \
                   adversary:B; join with + for one flag, e.g. \
                   corrupt:0.05+crash:60.")
  in
  let trace_flag =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Stream the execution trace to stdout (compact form) and \
                   print a metrics summary after the run.")
  in
  let run goal_kind user_kind dialect_idx horizon fault_specs trace seed =
    let alphabet = 6 in
    let dialects = Dialect.enumerate_rotations ~size:alphabet in
    let dialect i = Enum.get_exn dialects (i mod alphabet) in
    let scenario = Maze.scenario ~width:8 ~height:8 ~start:(0, 0) ~target:(5, 4) () in
    let space = 16 in
    let goal, server, user_class, universal, oracle =
      match goal_kind with
      | `Printing ->
          ( Printing.goal ~alphabet (),
            Printing.server ~alphabet (dialect dialect_idx),
            Printing.user_class ~alphabet dialects,
            (fun () -> Printing.universal_user ~alphabet dialects),
            fun () -> Printing.informed_user ~alphabet (dialect dialect_idx) )
      | `Maze ->
          ( Maze.goal ~scenarios:[ scenario ] ~alphabet (),
            Maze.server ~alphabet (dialect dialect_idx),
            Maze.user_class ~alphabet ~scenario dialects,
            (fun () -> Maze.universal_user ~alphabet ~scenario dialects),
            fun () -> Maze.informed_user ~alphabet ~scenario (dialect dialect_idx) )
      | `Control ->
          ( Control.goal ~alphabet (),
            Control.server ~alphabet (dialect dialect_idx),
            Control.user_class ~alphabet dialects,
            (fun () -> Control.universal_user ~alphabet dialects),
            fun () -> Control.informed_user ~alphabet (dialect dialect_idx) )
      | `Password ->
          ( Password.goal (),
            Password.server_with_password (dialect_idx mod space),
            Password.user_class ~space,
            (fun () -> Password.universal_user ~space ()),
            fun () -> Password.informed_user (dialect_idx mod space) )
      | `Delegation ->
          ( Delegation.goal ~alphabet (),
            Delegation.server ~alphabet (dialect dialect_idx),
            Delegation.user_class ~alphabet dialects,
            (fun () -> Delegation.universal_user ~alphabet dialects),
            fun () -> Delegation.informed_user ~alphabet (dialect dialect_idx) )
      | `Transfer ->
          ( Transfer.goal ~alphabet (),
            Transfer.server ~alphabet (dialect dialect_idx),
            Transfer.user_class ~alphabet dialects,
            (fun () -> Transfer.universal_user_fast ~alphabet dialects),
            fun () -> Transfer.informed_user ~alphabet (dialect dialect_idx) )
      | `Prediction ->
          ( Prediction.goal ~alphabet (),
            Prediction.server ~alphabet (dialect dialect_idx),
            Prediction.user_class ~alphabet dialects,
            (fun () -> Prediction.universal_user ~alphabet dialects),
            fun () -> Prediction.teacher_user ~alphabet (dialect dialect_idx) )
      | `Counting ->
          ( Counting.goal ~alphabet (),
            Counting.server ~alphabet (dialect dialect_idx),
            Counting.user_class ~alphabet dialects,
            (fun () -> Counting.universal_user ~alphabet dialects),
            fun () -> Counting.verifier_user ~alphabet (dialect dialect_idx) )
    in
    let user =
      match user_kind with
      | `Universal -> universal ()
      | `Oracle -> oracle ()
      | `Fixed -> Goalcom_baselines.Baselines.fixed user_class
      | `Random -> Goalcom_baselines.Baselines.random_actions ~alphabet ()
    in
    let fault =
      let module Fault = Goalcom_faults.Fault in
      List.fold_left
        (fun acc spec ->
          match Fault.stack_of_string ~alphabet spec with
          | Ok f -> Fault.compose acc f
          | Error e ->
              Printf.eprintf "%s\n" e;
              exit 1)
        Fault.nop fault_specs
    in
    let server = Goalcom_faults.Fault.apply fault server in
    let meter =
      if trace then
        Some (Goalcom_obs.Metrics.create ~clock:Unix.gettimeofday ())
      else None
    in
    let sink =
      Option.map
        (fun m ->
          Trace.tee
            (Goalcom_obs.Pretty.sink Format.std_formatter)
            (Goalcom_obs.Metrics.sink m))
        meter
    in
    let outcome, history =
      Exec.run_outcome ?sink
        ~config:(Exec.config ~horizon ())
        ~goal ~user ~server (Rng.make seed)
    in
    Format.printf "goal    : %s@." (Goal.name goal);
    Format.printf "user    : %s@." (Strategy.name user);
    Format.printf "server  : %s@." (Strategy.name server);
    Format.printf "outcome : %a@." Outcome.pp outcome;
    Format.printf "rounds  : %d@." (History.length history);
    Option.iter
      (fun m ->
        Format.printf "metrics :@.%a@." Goalcom_obs.Metrics.pp
          (Goalcom_obs.Metrics.summary m))
      meter
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run one goal once and report the outcome.")
    Term.(const run $ goal_arg $ user_arg $ dialect_arg $ horizon_arg
          $ fault_arg $ trace_flag $ seed_arg)

(* check *)

let check_cmd =
  let goal_arg =
    Arg.(required & pos 0 (some goal_conv) None
         & info [] ~docv:"GOAL" ~doc:"Goal whose sensing/helpfulness to validate.")
  in
  let run goal_kind seed =
    let alphabet = 4 in
    let dialects = Dialect.enumerate_rotations ~size:alphabet in
    let report r = Format.printf "%a@." Sensing.pp_report r in
    let rng = Rng.make seed in
    (match goal_kind with
    | `Printing ->
        let goal = Printing.goal ~alphabet () in
        let users = Enum.to_list (Printing.user_class ~alphabet dialects) in
        let servers = Enum.to_list (Printing.server_class ~alphabet dialects) in
        report
          (Sensing.check_safety_finite ~goal ~users ~servers Printing.sensing rng)
    | `Maze ->
        let scenario = Maze.scenario ~width:6 ~height:6 ~start:(0, 0) ~target:(4, 3) () in
        let goal = Maze.goal ~scenarios:[ scenario ] ~alphabet () in
        let users = Enum.to_list (Maze.user_class ~alphabet ~scenario dialects) in
        let servers = Enum.to_list (Maze.server_class ~alphabet dialects) in
        report (Sensing.check_safety_finite ~goal ~users ~servers Maze.sensing rng)
    | `Control ->
        let goal = Control.goal ~alphabet () in
        let users = Enum.to_list (Control.user_class ~alphabet dialects) in
        let servers = Enum.to_list (Control.server_class ~alphabet dialects) in
        report
          (Sensing.check_safety_compact
             ~config:(Exec.config ~horizon:1500 ())
             ~goal ~users ~servers (Control.sensing ()) rng)
    | `Password ->
        let goal = Password.goal () in
        let users = Enum.to_list (Password.user_class ~space:8) in
        let servers = Enum.to_list (Password.server_class ~space:8) in
        report
          (Sensing.check_safety_finite
             ~config:(Exec.config ~horizon:200 ())
             ~goal ~users ~servers Password.sensing rng)
    | `Delegation ->
        let goal = Delegation.goal ~alphabet () in
        let users = Enum.to_list (Delegation.user_class ~alphabet dialects) in
        let servers = Enum.to_list (Delegation.server_class ~alphabet dialects) in
        report
          (Sensing.check_safety_finite
             ~config:(Exec.config ~horizon:500 ())
             ~goal ~users ~servers Delegation.sensing rng)
    | `Transfer ->
        let goal = Transfer.goal ~alphabet () in
        let users = Enum.to_list (Transfer.user_class ~alphabet dialects) in
        let servers = Enum.to_list (Transfer.server_class ~alphabet dialects) in
        report
          (Sensing.check_safety_finite
             ~config:(Exec.config ~horizon:500 ())
             ~goal ~users ~servers Transfer.goal_sensing rng)
    | `Prediction ->
        let goal = Prediction.goal ~alphabet () in
        let users = Enum.to_list (Prediction.user_class ~alphabet dialects) in
        let servers = Enum.to_list (Prediction.server_class ~alphabet dialects) in
        report
          (Sensing.check_safety_compact
             ~config:(Exec.config ~horizon:800 ())
             ~goal ~users ~servers Prediction.sensing rng)
    | `Counting ->
        let goal = Counting.goal ~alphabet () in
        let users = Enum.to_list (Counting.user_class ~alphabet dialects) in
        let servers = Enum.to_list (Counting.server_class ~alphabet dialects) in
        report
          (Sensing.check_safety_finite
             ~config:(Exec.config ~horizon:300 ())
             ~goal ~users ~servers Counting.sensing rng));
    ()
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Validate sensing properties for a goal.")
    Term.(const run $ goal_arg $ seed_arg)

(* transcript *)

let transcript_cmd =
  let goal_arg =
    Arg.(required & pos 0 (some goal_conv) None
         & info [] ~docv:"GOAL" ~doc:"Goal to run and dump.")
  in
  let dialect_arg =
    Arg.(value & opt int 1 & info [ "dialect" ] ~docv:"K" ~doc:"Server dialect index.")
  in
  let rounds_arg =
    Arg.(value & opt int 25 & info [ "rounds" ] ~docv:"N" ~doc:"Rounds to print.")
  in
  let run goal_kind dialect_idx rounds seed =
    let alphabet = 6 in
    let dialects = Dialect.enumerate_rotations ~size:alphabet in
    let dialect i = Enum.get_exn dialects (i mod alphabet) in
    let goal, user, server =
      match goal_kind with
      | `Printing ->
          ( Printing.goal ~alphabet (),
            Printing.informed_user ~alphabet (dialect dialect_idx),
            Printing.server ~alphabet (dialect dialect_idx) )
      | `Maze ->
          let scenario =
            Maze.scenario ~width:8 ~height:8 ~start:(0, 0) ~target:(5, 4) ()
          in
          ( Maze.goal ~scenarios:[ scenario ] ~alphabet (),
            Maze.informed_user ~alphabet ~scenario (dialect dialect_idx),
            Maze.server ~alphabet (dialect dialect_idx) )
      | `Control ->
          ( Control.goal ~alphabet (),
            Control.informed_user ~alphabet (dialect dialect_idx),
            Control.server ~alphabet (dialect dialect_idx) )
      | `Password ->
          ( Password.goal (),
            Password.informed_user (dialect_idx mod 16),
            Password.server_with_password (dialect_idx mod 16) )
      | `Delegation ->
          ( Delegation.goal ~alphabet (),
            Delegation.informed_user ~alphabet (dialect dialect_idx),
            Delegation.server ~alphabet (dialect dialect_idx) )
      | `Transfer ->
          ( Transfer.goal ~alphabet (),
            Transfer.informed_user ~alphabet (dialect dialect_idx),
            Transfer.server ~alphabet (dialect dialect_idx) )
      | `Prediction ->
          ( Prediction.goal ~alphabet (),
            Prediction.teacher_user ~alphabet (dialect dialect_idx),
            Prediction.server ~alphabet (dialect dialect_idx) )
      | `Counting ->
          ( Counting.goal ~alphabet (),
            Counting.verifier_user ~alphabet (dialect dialect_idx),
            Counting.server ~alphabet (dialect dialect_idx) )
    in
    let history =
      Exec.run
        ~config:(Exec.config ~horizon:(max rounds 1) ())
        ~goal ~user ~server (Rng.make seed)
    in
    Format.printf "%a@." History.pp (History.prefix rounds history)
  in
  Cmd.v
    (Cmd.info "transcript"
       ~doc:"Run an informed user on a goal and print the round-by-round history.")
    Term.(const run $ goal_arg $ dialect_arg $ rounds_arg $ seed_arg)

(* serve / chaos — the supervised concurrent session engine *)

module Session = Goalcom_session

let print_report (r : Session.Engine.report) =
  let open Session.Engine in
  let n = Array.length r.outcomes in
  let pct k = 100.0 *. float_of_int k /. float_of_int (max 1 n) in
  Printf.printf "sessions       %d\n" n;
  Printf.printf "ticks          %d\n" r.ticks;
  Printf.printf "completed      %d (%.1f%%)\n" r.completed (pct r.completed);
  Printf.printf "shed           %d (%.1f%%)\n" r.shed (pct r.shed);
  Printf.printf "gave up        %d\n" r.gave_up;
  Printf.printf "deadlines      %d\n" r.deadlines;
  Printf.printf "unfinished     %d\n" r.unfinished;
  Printf.printf "restarts       %d\n" r.restarts;
  Printf.printf "breaker trips  %d\n" r.trips;
  Printf.printf "total rounds   %d\n" r.total_rounds;
  Printf.printf "p50 rounds     %.0f\n" r.p50_rounds;
  Printf.printf "p99 rounds     %.0f\n" r.p99_rounds;
  Printf.printf "p999 rounds    %.0f\n" r.p999_rounds;
  Printf.printf "digest         %s\n" r.digest

(* --stats: a live Rollup fed from the engine's supervision hook —
   fleet-level counters, histograms and sessions/sec with no trace
   retained.  "-" prints Prometheus text exposition to stdout at the
   end; a .prom path writes the same to a file; any other path gets a
   JSON snapshot rewritten atomically every --stats-every ticks (and at
   the end) for `goalcom top` to watch. *)

module Rollup = Goalcom_obs.Rollup

let stats_arg =
  Arg.(value & opt (some string) None
       & info [ "stats" ] ~docv:"FILE"
           ~doc:"Aggregate live per-class session rollups (admitted / \
                 shed / restarts / trips / done, rounds and latency \
                 p50/p99/p999, sessions/sec).  $(docv) '-' prints a \
                 Prometheus text exposition to stdout after the run; a \
                 .prom path writes the same to the file; any other path \
                 gets a JSON snapshot rewritten every $(b,--stats-every) \
                 ticks, which a concurrent `goalcom top --stats` \
                 renders live.")

let stats_every_arg =
  Arg.(value & opt int 50
       & info [ "stats-every" ] ~docv:"T"
           ~doc:"Ticks between snapshot rewrites for a JSON --stats file.")

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

type stats_live = {
  st_rollup : Rollup.t;
  st_supervise : tick:int -> session:int -> action:string -> detail:string -> unit;
  st_tick : tick:int -> unit;
  st_finish : unit -> unit;
}

let stats_live ~every ~specs path =
  let class_of id = specs.(id).Session.Engine.server_class in
  let st_rollup = Rollup.create ~clock:Unix.gettimeofday ~class_of () in
  let st_supervise ~tick ~session ~action ~detail =
    Rollup.supervise st_rollup ~tick ~session ~action ~detail
  in
  let st_tick ~tick =
    if path <> "-" && (not (Filename.check_suffix path ".prom"))
       && every > 0 && tick mod every = 0
    then write_atomic path (Rollup.to_json (Rollup.snapshot st_rollup))
  in
  let st_finish () =
    let snap = Rollup.snapshot st_rollup in
    if path = "-" then print_string (Rollup.to_prometheus snap)
    else begin
      let content =
        if Filename.check_suffix path ".prom" then Rollup.to_prometheus snap
        else Rollup.to_json snap
      in
      write_atomic path content;
      Table.print (Rollup.table snap);
      Printf.printf "stats          -> %s\n" path
    end
  in
  { st_rollup; st_supervise; st_tick; st_finish }

(* Thread optional hooks into Engine.run without cluttering each
   call site. *)
let engine_hooks = function
  | None -> (None, None)
  | Some st -> (Some st.st_supervise, Some st.st_tick)

let sessions_arg ~default =
  Arg.(value & opt int default
       & info [ "sessions" ] ~docv:"N"
           ~doc:"Number of sessions in the population (the standard E18 \
                 mix: printing / corridor-maze / open-maze universal \
                 users, round-robin).")

let mix_arg =
  Arg.(value & opt (enum [ ("e18", `E18); ("net", `Net) ]) `E18
       & info [ "mix" ] ~docv:"MIX"
           ~doc:"Session population: $(b,e18) (the standard printing/maze \
                 mix) or $(b,net) (lib/net: shared-medium multiple-access \
                 groups of four — stepped through the engine's group \
                 arbiter, one slot per tick — plus topology-routing and \
                 ARQ-forwarding universal sessions).  The net mix pins \
                 quantum to 1 so a scheduler tick is one medium slot.")

(* The net mix attaches shared-medium groups and needs quantum 1 (one
   tick = one arbitration slot); warm stores record E18 classes only. *)
let population_of_mix ?warm ~sessions = function
  | `E18 -> (E18_chaos_matrix.specs ?warm ~sessions (), [])
  | `Net -> E19_net_matrix.population ~sessions ()

(* Warm-start stores: known winning candidate indices per session
   class, persisted as JSONL (lib/compile Warm).  Loading a missing
   file is an empty store; a corrupt file degrades to a cold start
   (Warm.hints rejects it with a Trace.Warm event). *)

module Warm = Goalcom_compile.Warm

let warm_arg =
  Arg.(value & opt (some string) None
       & info [ "warm" ] ~docv:"FILE"
           ~doc:"Warm-start store (JSONL).  Known winning candidate \
                 indices for each session class are probed first — one \
                 prepended Levin slot per class — and after the run the \
                 store is rewritten with the winners this run proved.  \
                 A missing file is an empty store; a corrupt one falls \
                 back to a cold start.")

let warm_load path = if Sys.file_exists path then Warm.load path else Ok []

let warm_save path warm report =
  let entries = E18_chaos_matrix.warm_entries ?warm report in
  Warm.save path entries;
  Printf.printf "warm store     %d entries -> %s\n" (List.length entries) path

let max_live_arg =
  Arg.(value & opt int 256
       & info [ "max-live" ] ~docv:"N"
           ~doc:"Concurrently running sessions (admission slots).")

let queue_arg =
  Arg.(value & opt int 1_000_000
       & info [ "queue" ] ~docv:"N"
           ~doc:"Admission queue capacity; arrivals beyond slots + queue \
                 are shed.")

let budget_arg =
  Arg.(value & opt int 0
       & info [ "round-budget" ] ~docv:"R"
           ~doc:"Rounds per incarnation before the supervisor wedge-kills \
                 it (0 disables).")

let arrivals_arg =
  Arg.(value & opt string "bang"
       & info [ "arrivals" ] ~docv:"SPEC"
           ~doc:"Arrival process: bang (the whole population arrives at \
                 tick 1), a bare integer N (N sessions per tick), \
                 poisson:R (open-loop Poisson arrivals at mean rate R \
                 per tick) or mmpp:R1,R2,..[:P] (Markov-modulated \
                 Poisson cycling through the rates with per-tick hop \
                 probability P, default 0.1).  Sampling is seeded and \
                 deterministic.")

let class_weights_arg =
  Arg.(value & opt string ""
       & info [ "class-weights" ] ~docv:"SPEC"
           ~doc:"Fair-share admission classes as \
                 CLASS=WEIGHT[,CLASS=WEIGHT..] over server classes \
                 (e.g. printing=3,maze-corridor=1).  Queued sessions \
                 are served by weighted deficit round-robin, so an \
                 open breaker blocks only its own class; unlisted \
                 classes share a default queue of weight 1.  Empty: \
                 one FIFO queue.")

let parse_arrivals s =
  match Session.Arrival.of_string s with
  | Ok a -> a
  | Error e ->
      Printf.eprintf "%s\n" e;
      exit 1

let parse_class_weights s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           match String.index_opt part '=' with
           | Some i -> (
               let cname = String.trim (String.sub part 0 i) in
               let w =
                 String.trim
                   (String.sub part (i + 1) (String.length part - i - 1))
               in
               match int_of_string_opt w with
               | Some w when w >= 1 && cname <> "" -> (cname, w)
               | _ ->
                   Printf.eprintf
                     "--class-weights: bad entry %S (want CLASS=WEIGHT \
                      with WEIGHT >= 1)\n"
                     part;
                   exit 1)
           | None ->
               Printf.eprintf
                 "--class-weights: bad entry %S (want CLASS=WEIGHT)\n" part;
               exit 1)

let serve_cmd =
  let quantum_arg =
    Arg.(value & opt int 32
         & info [ "quantum" ] ~docv:"R"
             ~doc:"Rounds each running session advances per scheduler tick.")
  in
  let deadline_arg =
    Arg.(value & opt int 0
         & info [ "deadline" ] ~docv:"T"
             ~doc:"Ticks from arrival before an unfinished session is \
                   abandoned (0 disables).")
  in
  let run sessions mix max_live queue quantum arrivals class_weights deadline
      budget warm_path stats stats_every seed jobs =
    apply_jobs jobs;
    let quantum = match mix with `Net -> 1 | `E18 -> quantum in
    let arrivals = parse_arrivals arrivals in
    let classes = parse_class_weights class_weights in
    let config =
      Session.Engine.config ~quantum ~max_live ~queue_capacity:queue ~arrivals
        ~classes ~round_budget:budget ~deadline ()
    in
    let warm = Option.map warm_load warm_path in
    let specs, groups = population_of_mix ?warm ~sessions mix in
    let stats =
      Option.map (stats_live ~every:stats_every ~specs) stats
    in
    let on_supervise, on_tick = engine_hooks stats in
    let report =
      Session.Engine.run ~config ~groups ?on_supervise ?on_tick ~specs ~seed
        ()
    in
    print_report report;
    Option.iter (fun st -> st.st_finish ()) stats;
    match mix with
    | `E18 -> Option.iter (fun path -> warm_save path warm report) warm_path
    | `Net ->
        Option.iter
          (fun _ ->
            Printf.printf
              "warm store     unchanged (the net mix records no classes)\n")
          warm_path
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a session population through the supervised concurrent \
             engine (no chaos): admission control, restart supervision, \
             per-class circuit breakers.")
    Term.(const run $ sessions_arg ~default:256 $ mix_arg $ max_live_arg
          $ queue_arg $ quantum_arg $ arrivals_arg $ class_weights_arg
          $ deadline_arg $ budget_arg $ warm_arg $ stats_arg $ stats_every_arg
          $ seed_arg $ jobs_arg)

let chaos_run_cmd =
  let schedule_arg =
    Arg.(value & opt string "kill@2,4%5=0;crash:25@1..800%3=1"
         & info [ "schedule" ] ~docv:"SPEC"
             ~doc:"Chaos schedule: ';'-joined directives kill\\@T1,T2, \
                   crash:K\\@LO..HI, burst:P\\@LO..HI, blackout\\@LO..HI, \
                   fault:STACK, each optionally targeted %M=R (sessions \
                   with id mod M = R).")
  in
  let repeat_arg =
    Arg.(value & opt int 1
         & info [ "repeat" ] ~docv:"K"
             ~doc:"Run the schedule $(docv) times and assert digest \
                   determinism across repeats (exit 1 on divergence).")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Record the merged trace, validate the standard trace \
                   invariants, and (with --repeat) assert the merged \
                   trace itself is identical across repeats.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write the merged JSONL trace (per-session buffers in \
                   session-id order) to $(docv).")
  in
  let ring_arg =
    Arg.(value & opt (some int) None
         & info [ "ring" ] ~docv:"N"
             ~doc:"Capture the merged trace through the binary ring-buffer \
                   sink retaining the last $(docv) events, instead of an \
                   unbounded in-memory buffer — the always-on production \
                   capture.  --trace then writes the drained tail; the \
                   invariant check of --check is skipped if the ring \
                   evicted events (a truncated prefix is not a run).")
  in
  let run sessions mix schedule max_live queue arrivals class_weights budget
      repeat check trace ring warm_path stats stats_every seed jobs =
    apply_jobs jobs;
    let chaos =
      match Session.Chaos.of_string ~alphabet:6 schedule with
      | Ok c -> c
      | Error e -> Printf.eprintf "%s\n" e; exit 1
    in
    let arrivals = parse_arrivals arrivals in
    let classes = parse_class_weights class_weights in
    let config =
      Session.Engine.config
        ?quantum:(match mix with `Net -> Some 1 | `E18 -> None)
        ~max_live ~queue_capacity:queue ~arrivals ~classes
        ~round_budget:budget ()
    in
    let warm = Option.map warm_load warm_path in
    (* Rebuilt per run: net-mix groups close over mutable media whose
       cumulative slot counters would otherwise leak from one repeat
       into the next run's arbiter report details. *)
    let fresh_population () = population_of_mix ?warm ~sessions mix in
    let specs, _ = fresh_population () in
    let stats = Option.map (stats_live ~every:stats_every ~specs) stats in
    let capture = check || trace <> None || ring <> None in
    let evicted = ref 0 in
    (* The rollup hooks feed only the first run: repeats exist to check
       determinism of the engine, not to double-count sessions. *)
    let once ~hooks () =
      let specs, groups = fresh_population () in
      let on_supervise, on_tick =
        engine_hooks (if hooks then stats else None)
      in
      let go () =
        Session.Engine.run ~chaos ~config ~groups ?on_supervise ?on_tick
          ~specs ~seed ()
      in
      if not capture then (go (), None)
      else
        match ring with
        | Some capacity ->
            let r = Goalcom_obs.Ring.create ~capacity in
            (* The engine replays its merged stream from this domain, so
               the shard-bound fast path applies. *)
            let report = Trace.with_sink (Goalcom_obs.Ring.domain_sink r) go in
            evicted := Goalcom_obs.Ring.evicted r;
            (report, Some (Goalcom_obs.Ring.events r))
        | None ->
            let buf = ref [] in
            let report = Trace.with_sink (fun ev -> buf := ev :: !buf) go in
            (report, Some (List.rev !buf))
    in
    let first, events = once ~hooks:true () in
    print_report first;
    Option.iter (fun st -> st.st_finish ()) stats;
    (match mix with
    | `E18 -> Option.iter (fun path -> warm_save path warm first) warm_path
    | `Net ->
        Option.iter
          (fun _ ->
            Printf.printf
              "warm store     unchanged (the net mix records no classes)\n")
          warm_path);
    (match events with
    | None -> ()
    | Some evs ->
        if ring <> None then
          Printf.printf "ring           %d events retained, %d evicted\n"
            (List.length evs) !evicted;
        (match trace with
        | None -> ()
        | Some path ->
            Goalcom_obs.Jsonl.with_file path (fun sink ->
                List.iter sink evs));
        if check then
          if !evicted > 0 then
            Printf.printf
              "trace          invariants skipped (ring evicted %d events)\n"
              !evicted
          else begin
            match Trace.check Trace.standard evs with
            | Ok () ->
                Printf.printf
                  "trace ok       %d events, standard invariants hold\n"
                  (List.length evs)
            | Error msg ->
                Printf.eprintf "trace invariant violated: %s\n" msg;
                exit 1
          end);
    for k = 2 to repeat do
      let r, evs = once ~hooks:false () in
      if r.Session.Engine.digest <> first.Session.Engine.digest then begin
        Printf.eprintf "repeat %d: digest diverged (%s vs %s)\n" k
          r.Session.Engine.digest first.Session.Engine.digest;
        exit 1
      end;
      if check && evs <> events then begin
        Printf.eprintf "repeat %d: merged trace diverged\n" k;
        exit 1
      end;
      Printf.printf "repeat %d       digest identical%s\n" k
        (if check then ", merged trace identical" else "")
    done
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the session population under a chaos schedule and report \
             completion, shedding, restarts and breaker activity.")
    Term.(const run $ sessions_arg ~default:500 $ mix_arg $ schedule_arg
          $ max_live_arg $ queue_arg $ arrivals_arg $ class_weights_arg
          $ budget_arg $ repeat_arg $ check_arg $ trace_arg $ ring_arg
          $ warm_arg $ stats_arg $ stats_every_arg $ seed_arg $ jobs_arg)

let chaos_matrix_cmd =
  let run sessions seed jobs =
    apply_jobs jobs;
    Option.iter
      (fun n -> Unix.putenv "GOALCOM_E18_SESSIONS" (string_of_int n))
      sessions;
    Table.print (E18_chaos_matrix.run ~seed)
  in
  let sessions_opt =
    Arg.(value & opt (some int) None
         & info [ "sessions" ] ~docv:"N"
             ~doc:"Sessions per condition (default 2000, i.e. a \
                   10k-session matrix; equivalent to setting \
                   $(b,GOALCOM_E18_SESSIONS)).")
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"Run the full E18 chaos matrix (same output as `goalcom run \
             e18`).")
    Term.(const run $ sessions_opt $ seed_arg $ jobs_arg)

let chaos_cmd =
  Cmd.group
    (Cmd.info "chaos"
       ~doc:"Deterministic chaos harness over the supervised session \
             engine: fault schedules, kill schedules, determinism checks.")
    [ chaos_run_cmd; chaos_matrix_cmd ]

(* warm — record / show warm-start stores *)

let warm_record_cmd =
  (* 18 sessions cover every (family, dialect) key once: printing
     cycles 4 dialects on ids 0,3,6,9 and each maze family cycles 6 on
     its residue class. *)
  let run sessions out seed jobs =
    apply_jobs jobs;
    let specs = E18_chaos_matrix.specs ~sessions () in
    let report = Session.Engine.run ~specs ~seed () in
    let entries = E18_chaos_matrix.warm_entries report in
    Warm.save out entries;
    Printf.printf "ran %d cold sessions: %d completed, %d warm entries -> %s\n"
      sessions report.Session.Engine.completed (List.length entries) out
  in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Warm-start store to write (JSONL, overwritten).")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run a small cold population of the standard session mix and \
             record every winning candidate index into a warm-start \
             store, so later `serve --warm` / `chaos run --warm` runs \
             probe the winners first.")
    Term.(const run $ sessions_arg ~default:18 $ out_arg $ seed_arg $ jobs_arg)

let warm_show_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Warm-start store to print.")
  in
  let run path =
    match Warm.load path with
    | Error e -> Printf.eprintf "%s\n" e; exit 1
    | Ok entries ->
        Table.print
          (Table.make ~title:path
             ~columns:[ "class"; "enumeration"; "index"; "budget" ]
             (List.map
                (fun (e : Warm.entry) ->
                  [
                    e.Warm.server_class; e.Warm.enum;
                    string_of_int e.Warm.index; string_of_int e.Warm.budget;
                  ])
                entries))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a warm-start store as a table.")
    Term.(const run $ file_arg)

let warm_cmd =
  Cmd.group
    (Cmd.info "warm"
       ~doc:"Warm-start stores: persist known-good winning candidate \
             indices per session class, so repeated runs skip the \
             enumeration ladder.")
    [ warm_record_cmd; warm_show_cmd ]

(* trace-golden *)

let trace_golden_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR"
             ~doc:"Directory to write the <case>.jsonl files into \
                   (the test suite reads test/golden).")
  in
  let run dir =
    List.iter
      (fun (c : Trace_cases.case) ->
        let path = Filename.concat dir (c.Trace_cases.name ^ ".jsonl") in
        let events = c.Trace_cases.events () in
        Goalcom_obs.Jsonl.to_file path events;
        Printf.printf "wrote %s (%d events)\n" path (List.length events))
      Trace_cases.all;
    let stats_path = Filename.concat dir "stats_e18_chaos.json" in
    let oc = open_out stats_path in
    output_string oc (Trace_cases.rollup_stats ());
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" stats_path
  in
  Cmd.v
    (Cmd.info "trace-golden"
       ~doc:"Regenerate the golden trace files the test suite diffs against.")
    Term.(const run $ dir_arg)

(* trace — analytics over recorded JSONL trace files *)

let load_trace path =
  match Goalcom_obs.Jsonl.of_file path with
  | Ok events -> events
  | Error e ->
      Printf.eprintf "%s\n" e;
      exit 1

module Span = Goalcom_obs.Span

let trace_stats_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"JSONL trace file to summarize.")
  in
  let run path =
    let events = load_trace path in
    let module Obs = Goalcom_obs in
    let runs = Span.of_events events in
    let kinds = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        let k = Obs.Trace_diff.kind_name ev in
        Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
      events;
    Printf.printf "%s: %d events, %d runs\n" path (List.length events)
      (List.length runs);
    let kind_rows =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) kinds []
      |> List.sort (fun (_, a) (_, b) -> compare (b : int) a)
      |> List.map (fun (k, n) -> [ k; string_of_int n ])
    in
    Table.print (Table.make ~title:"events" ~columns:[ "kind"; "count" ] kind_rows);
    Table.print (Span.runs_table runs)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Event counts and per-run summary of a trace file.")
    Term.(const run $ file_arg)

and trace_attribution_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"JSONL trace file to attribute.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.")
  in
  let run path csv =
    let events = load_trace path in
    let runs = Span.of_events events in
    if csv then print_string (Table.to_csv (Span.ledger_table (Span.ledger runs)))
    else begin
      Table.print (Span.runs_table runs);
      Table.print (Span.ledger_table (Span.ledger runs))
    end
  in
  Cmd.v
    (Cmd.info "attribution"
       ~doc:"Charge every round, message, sensing verdict and fault to the \
             enumerated candidate in charge; report the overhead ledger.")
    Term.(const run $ file_arg $ csv_arg)

and trace_diff_cmd =
  let left_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"LEFT" ~doc:"First trace file.")
  in
  let right_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"RIGHT" ~doc:"Second trace file.")
  in
  let run left right =
    let module Td = Goalcom_obs.Trace_diff in
    let llines = Goalcom_obs.Jsonl.read_lines left in
    let rlines = Goalcom_obs.Jsonl.read_lines right in
    match Td.lines llines rlines with
    | None ->
        Printf.printf "traces identical (%d events)\n" (List.length llines)
    | Some d ->
        print_endline
          (Td.to_string ~left_label:(Filename.basename left)
             ~right_label:(Filename.basename right) d);
        exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"First divergence between two trace files (exit 1 if they \
             differ, with an event-kind-aware explanation).")
    Term.(const run $ left_arg $ right_arg)

and trace_export_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"JSONL trace file to export.")
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("chrome", `Chrome); ("csv", `Csv) ]) `Chrome
         & info [ "format" ] ~docv:"FMT"
             ~doc:"chrome (trace-event JSON for chrome://tracing / Perfetto) \
                   or csv (one row per attributed span).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"OUT"
             ~doc:"Write to $(docv) instead of stdout.")
  in
  let run path format out =
    let events = load_trace path in
    let rendered =
      match format with
      | `Chrome -> Goalcom_obs.Profile.chrome_of_events events
      | `Csv -> Goalcom_obs.Profile.csv_of_events events
    in
    match out with
    | None -> print_string rendered
    | Some out_path ->
        let oc = open_out out_path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc rendered);
        Printf.printf "wrote %s (%d bytes)\n" out_path (String.length rendered)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Render a trace's attributed spans as a Chrome trace-event \
             profile (round numbers as logical time) or as CSV.")
    Term.(const run $ file_arg $ format_arg $ out_arg)

and trace_sessions_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"JSONL engine trace (from `serve`/`chaos run --trace`).")
  in
  let run path =
    let events = load_trace path in
    match Span.sessions_of_events events with
    | [] ->
        Printf.printf
          "%s: no Supervise events — not an engine trace (try `goalcom \
           trace attribution`)\n"
          path
    | sessions -> Table.print (Span.sessions_table sessions)
  in
  Cmd.v
    (Cmd.info "sessions"
       ~doc:"Per-session supervise attribution of an engine trace: one row \
             per session with its incarnations, restarts, kills, the \
             enumeration indices each restart resumed at, and the winning \
             candidate.")
    Term.(const run $ file_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Analytics over JSONL execution traces: stats, overhead \
             attribution, per-session supervision, structural diffing, \
             profile export.")
    [
      trace_stats_cmd; trace_attribution_cmd; trace_sessions_cmd;
      trace_diff_cmd; trace_export_cmd;
    ]

(* top — live fleet stats, htop-style *)

let top_cmd =
  let stats_file_arg =
    Arg.(value & opt (some string) None
         & info [ "stats" ] ~docv:"FILE"
             ~doc:"Watch the JSON snapshot file a concurrent `serve --stats \
                   FILE` (or `chaos run --stats FILE`) keeps rewriting, \
                   instead of serving an internal population.")
  in
  let interval_arg =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between redraws when watching a --stats file.")
  in
  let refresh_arg =
    Arg.(value & opt int 20
         & info [ "refresh-ticks" ] ~docv:"T"
             ~doc:"Scheduler ticks between redraws when serving the \
                   internal population.")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Render a single frame and exit (no ANSI \
                                 clearing; smoke tests and pipelines).")
  in
  let draw ~clear snap =
    if clear then print_string "\027[H\027[2J";
    Table.print (Rollup.table snap);
    flush stdout
  in
  let watch_file path interval once =
    let frame () =
      match Goalcom_obs.Json.of_file path with
      | Error e -> Error e
      | Ok j -> Rollup.snapshot_of_json j
    in
    if once then (
      match frame () with
      | Ok snap -> draw ~clear:false snap
      | Error e ->
          Printf.eprintf "%s\n" e;
          exit 1)
    else
      let rec loop () =
        (match frame () with
        | Ok snap -> draw ~clear:true snap
        | Error e ->
            print_string "\027[H\027[2J";
            Printf.printf "goalcom top: waiting for %s (%s)\n%!" path e);
        Unix.sleepf interval;
        loop ()
      in
      loop ()
  in
  let serve_internal sessions refresh once seed jobs =
    apply_jobs jobs;
    let specs = E18_chaos_matrix.specs ~sessions () in
    let class_of id = specs.(id).Session.Engine.server_class in
    let rollup = Rollup.create ~clock:Unix.gettimeofday ~class_of () in
    let on_supervise ~tick ~session ~action ~detail =
      Rollup.supervise rollup ~tick ~session ~action ~detail
    in
    let on_tick ~tick =
      if (not once) && refresh > 0 && tick mod refresh = 0 then
        draw ~clear:true (Rollup.snapshot rollup)
    in
    let report =
      Session.Engine.run
        ~config:(Session.Engine.config ~max_live:64 ())
        ~on_supervise ~on_tick ~specs ~seed ()
    in
    draw ~clear:(not once) (Rollup.snapshot rollup);
    Printf.printf "completed %d/%d, digest %s\n" report.Session.Engine.completed
      (Array.length specs) report.Session.Engine.digest
  in
  let run stats sessions interval refresh once seed jobs =
    match stats with
    | Some path -> watch_file path interval once
    | None -> serve_internal sessions refresh once seed jobs
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live fleet stats, htop-style: an in-place session rollup \
             table (per-class counters, rounds and latency percentiles, \
             sessions/sec).  With --stats FILE it watches a running \
             serve/chaos; without, it serves an internal population and \
             redraws as it runs.")
    Term.(const run $ stats_file_arg $ sessions_arg ~default:120
          $ interval_arg $ refresh_arg $ once_arg $ seed_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "goalcom" ~version:"1.0.0"
      ~doc:"A theory of goal-oriented communication, executable (PODC 2011)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; all_cmd; demo_cmd; check_cmd; transcript_cmd;
            serve_cmd; chaos_cmd; warm_cmd; top_cmd; trace_golden_cmd;
            trace_cmd;
          ]))
