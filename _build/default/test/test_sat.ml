(* Unit tests for the SAT substrate: CNF evaluation, DPLL completeness
   on small formulas, generators. *)

open Goalcom_prelude
open Goalcom_sat

let test_cnf_eval () =
  let f = Cnf.make ~num_vars:3 [ [ 1; -2 ]; [ 2; 3 ] ] in
  let a = [| false; true; false; false |] in
  Alcotest.(check bool) "first clause" true (Cnf.eval_clause a [ 1; -2 ]);
  Alcotest.(check bool) "second clause" false (Cnf.eval_clause a [ 2; 3 ]);
  Alcotest.(check bool) "whole" false (Cnf.eval f a);
  let b = [| false; true; true; true |] in
  Alcotest.(check bool) "satisfying" true (Cnf.eval f b)

let test_cnf_validation () =
  Alcotest.check_raises "zero literal" (Invalid_argument "Cnf.make: bad literal 0")
    (fun () -> ignore (Cnf.make ~num_vars:2 [ [ 0 ] ]));
  Alcotest.check_raises "big literal" (Invalid_argument "Cnf.make: bad literal 5")
    (fun () -> ignore (Cnf.make ~num_vars:2 [ [ 5 ] ]));
  Alcotest.check_raises "empty clause" (Invalid_argument "Cnf.make: empty clause")
    (fun () -> ignore (Cnf.make ~num_vars:2 [ [] ]));
  Alcotest.check_raises "length" (Invalid_argument "Cnf.eval: assignment length mismatch")
    (fun () -> ignore (Cnf.eval (Cnf.make ~num_vars:2 [ [ 1 ] ]) [| false |]))

let test_cnf_to_string () =
  let f = Cnf.make ~num_vars:2 [ [ 1; -2 ] ] in
  Alcotest.(check string) "render" "(1 -2)" (Cnf.to_string f)

let test_dpll_sat_simple () =
  let f = Cnf.make ~num_vars:2 [ [ 1 ]; [ -1; 2 ] ] in
  match Dpll.solve f with
  | None -> Alcotest.fail "should be satisfiable"
  | Some a ->
      Alcotest.(check bool) "model" true (Cnf.eval f a);
      Alcotest.(check bool) "x1" true a.(1);
      Alcotest.(check bool) "x2" true a.(2)

let test_dpll_unsat () =
  let f = Cnf.make ~num_vars:1 [ [ 1 ]; [ -1 ] ] in
  Alcotest.(check bool) "unsat" false (Dpll.satisfiable f);
  let g =
    Cnf.make ~num_vars:2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ]
  in
  Alcotest.(check bool) "unsat 2" false (Dpll.satisfiable g)

let test_dpll_agrees_with_bruteforce () =
  (* On random tiny formulas DPLL must agree with exhaustive counting. *)
  let rng = Rng.make 50 in
  List.iter
    (fun i ->
      let f =
        Gen.uniform rng ~num_vars:4 ~num_clauses:(6 + (i mod 6)) ~clause_len:2
      in
      let brute = Dpll.count_models f > 0 in
      Alcotest.(check bool)
        (Printf.sprintf "formula %d" i)
        brute (Dpll.satisfiable f))
    (Listx.range 0 40)

let test_dpll_solution_verifies () =
  let rng = Rng.make 51 in
  List.iter
    (fun i ->
      let f = Gen.uniform rng ~num_vars:6 ~num_clauses:14 ~clause_len:3 in
      match Dpll.solve f with
      | None -> ()
      | Some a ->
          Alcotest.(check bool) (Printf.sprintf "model %d verifies" i) true
            (Cnf.eval f a))
    (Listx.range 0 40)

let test_planted_is_satisfiable () =
  let rng = Rng.make 52 in
  List.iter
    (fun i ->
      let f, plant =
        Gen.planted rng ~num_vars:8 ~num_clauses:24 ~clause_len:3
      in
      Alcotest.(check bool) (Printf.sprintf "plant %d satisfies" i) true
        (Cnf.eval f plant);
      Alcotest.(check bool) (Printf.sprintf "dpll solves %d" i) true
        (Dpll.satisfiable f))
    (Listx.range 0 20)

let test_planted_shape () =
  let rng = Rng.make 53 in
  let f, _ = Gen.planted rng ~num_vars:5 ~num_clauses:7 ~clause_len:3 in
  Alcotest.(check int) "clauses" 7 (Cnf.num_clauses f);
  List.iter
    (fun clause ->
      Alcotest.(check int) "clause length" 3 (List.length clause);
      let vars = List.map abs clause in
      Alcotest.(check int) "distinct vars" 3
        (List.length (List.sort_uniq compare vars)))
    f.Cnf.clauses

let test_count_models () =
  let f = Cnf.make ~num_vars:2 [ [ 1; 2 ] ] in
  Alcotest.(check int) "3 models" 3 (Dpll.count_models f);
  Alcotest.(check int) "limit" 2 (Dpll.count_models ~limit:2 f)

let test_gen_validation () =
  let rng = Rng.make 54 in
  Alcotest.check_raises "clause_len"
    (Invalid_argument "Sat.Gen: clause_len exceeds num_vars") (fun () ->
      ignore (Gen.uniform rng ~num_vars:2 ~num_clauses:1 ~clause_len:3))

let () =
  Alcotest.run "sat"
    [
      ( "cnf",
        [
          Alcotest.test_case "eval" `Quick test_cnf_eval;
          Alcotest.test_case "validation" `Quick test_cnf_validation;
          Alcotest.test_case "to_string" `Quick test_cnf_to_string;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "sat simple" `Quick test_dpll_sat_simple;
          Alcotest.test_case "unsat" `Quick test_dpll_unsat;
          Alcotest.test_case "agrees with brute force" `Quick test_dpll_agrees_with_bruteforce;
          Alcotest.test_case "solutions verify" `Quick test_dpll_solution_verifies;
          Alcotest.test_case "count models" `Quick test_count_models;
        ] );
      ( "gen",
        [
          Alcotest.test_case "planted satisfiable" `Quick test_planted_is_satisfiable;
          Alcotest.test_case "planted shape" `Quick test_planted_shape;
          Alcotest.test_case "validation" `Quick test_gen_validation;
        ] );
    ]
