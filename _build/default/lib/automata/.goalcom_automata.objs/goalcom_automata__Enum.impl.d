lib/automata/enum.ml: Array Coding Goalcom_prelude List Listx Option Printf
