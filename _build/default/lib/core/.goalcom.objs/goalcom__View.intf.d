lib/core/view.mli: History Msg
