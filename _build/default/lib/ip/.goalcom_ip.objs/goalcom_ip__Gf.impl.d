lib/ip/gf.ml: Format Goalcom_prelude Int
