(** Structured execution tracing: the event algebra and the ambient sink.

    Every claim in the paper is about what happens {e during} a run —
    sensing verdicts, the strategy switches of Theorem 1's enumeration,
    rounds until the referee settles.  This module makes those moments
    first-class events.  {!Exec.run} emits round boundaries, per-party
    message emissions and the user's halt; {!Universal} emits sensing
    verdicts, strategy switches, Levin schedule steps and checkpoint
    resumes; {!Sensing.tolerant} emits masked verdicts; the fault layer
    ([lib/faults]) emits fault activations; {!Exec.run_outcome} emits
    referee violations.  The metrics aggregator, JSONL exporter and
    pretty-printer live on top, in [lib/obs] ([goalcom_obs]).

    {b Sink discipline.}  There is one ambient sink {e per domain},
    installed with {!set_sink} or scoped with {!with_sink} (the model is
    a [Logs] reporter, made domain-local).  Emitters guard every
    emission site with {!enabled}, so with no sink installed {e no event
    value is allocated}: the disabled path costs one domain-local load
    and branch per site.  Traces carry no wall-clock stamps — a trace is
    a pure function of (strategies, goal, seed, config), so same seed ⇒
    bit-identical trace; timing lives in the metrics layer, out of band.

    {b Domains.}  {!set_sink}, {!with_sink}, {!set_round} and their
    readers act on the {e calling domain only}; fresh domains start with
    no sink.  The parallel entry points ([Trial.run_par],
    [Universal.finite_par]) install a buffering sink inside each pool
    task and merge the buffers in deterministic (trial, round) order, so
    a parallel run's merged trace equals the sequential trace.
    Installing a sink from a domain that is {e not} participating in an
    in-flight pool batch while one runs elsewhere raises
    [Invalid_argument] — such a sink would silently observe nothing. *)

type party = User | Server | World

val party_name : party -> string
(** ["user"], ["server"], ["world"]. *)

type event =
  | Run_start of {
      goal : string;
      user : string;
      server : string;
      horizon : int;
      drain : int;
      world_choice : int;
    }  (** emitted once by {!Exec.run}, before the parties are created *)
  | Round_start of { round : int }  (** round boundary (rounds start at 1) *)
  | Emit of { round : int; src : party; dst : party; msg : Msg.t }
      (** a non-silent message placed on the wire in [round] *)
  | Halt of { round : int }  (** the user requested halt in [round] *)
  | Sense of {
      round : int;
      sensor : string;
      positive : bool;
      clock : int;  (** rounds the judged strategy has been running *)
      patience : int;  (** effective grace / tolerance threshold in force *)
    }  (** a sensing verdict, as consumed by a universal construction *)
  | Switch of { round : int; from_index : int; to_index : int; attempt : int }
      (** compact enumeration advanced (or retried: same index, higher
          [attempt]) after a negative indication *)
  | Resume of { index : int; slots : int }
      (** a fresh incarnation resumed a checkpointed enumeration *)
  | Session of { round : int; index : int; budget : int }
      (** the finite (Levin) construction started a scheduled session *)
  | Fault of { round : int; fault : string; detail : string }
      (** a fault combinator activated (corruption, crash, outage, ...) *)
  | Violation of { round : int }
      (** referee violation, judged post-run by {!Exec.run_outcome} *)
  | Run_end of { rounds : int; halted : bool }
  | Supervise of { tick : int; session : int; action : string; detail : string }
      (** a supervision decision of the session engine ([lib/session]):
          [action] is one of ["admit"], ["shed"], ["start"], ["restart"],
          ["kill"], ["fail"], ["wedge"], ["give-up"], ["deadline"],
          ["trip"], ["half-open"], ["close"] or ["done"]; [tick] is the
          engine's scheduler tick (not an execution round — supervision
          happens between runs) *)
  | Warm of {
      server_class : string;
      enum : string;
      index : int;
      accepted : bool;
      detail : string;
    }
      (** a warm-start cache decision ([lib/compile]): an entry for
          ([server_class], [enum]) proposing candidate [index] was
          applied ([accepted = true], [detail = "hit"]) or rejected in
          favour of the cold enumeration ([accepted = false]; [detail]
          says why — a parse error, a stale index, a bad budget).
          [index] is [-1] when no usable index was recovered *)

type sink = event -> unit

(** {1 The ambient sink} *)

val enabled : unit -> bool
(** Guard emissions with this so the no-sink path allocates nothing. *)

val emit : event -> unit
(** Deliver to the ambient sink ([()] when none is installed). *)

val current : unit -> sink option

val set_sink : sink option -> unit
(** Install (or clear) the calling domain's ambient sink — CLI-style
    usage.  @raise Invalid_argument when installing from a
    non-participant domain while a pool batch is in flight (see the
    module preamble: sinks are domain-local). *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Run the thunk with the given sink installed on the calling domain,
    restoring the previous sink (and current round) afterwards,
    exceptions included.  Same in-flight-batch guard as {!set_sink}. *)

val set_round : int -> unit
(** Maintained by {!Exec.run} while tracing so emitters that cannot see
    the round number (fault wrappers) can stamp their events. *)

val current_round : unit -> int

(** {1 The hot-path handle}

    {!emit}, {!enabled} and {!set_round} each perform one domain-local
    lookup; an emitter that touches the sink several times per round
    (the {!Exec.Stepper} step loop pays up to nine accesses per round)
    can fetch the calling domain's trace state {e once} and go through
    the handle instead.  A handle stays valid while the holder remains
    on its domain — {!set_sink} and {!with_sink} mutate the same record
    in place, so a cached handle observes sink changes immediately.
    Never move a handle across domains. *)

type handle

val handle : unit -> handle
(** The calling domain's trace state; one DLS access. *)

val handle_enabled : handle -> bool
val handle_emit : handle -> event -> unit
val handle_set_round : handle -> int -> unit
val handle_round : handle -> int

val tee : sink -> sink -> sink
(** Both sinks, left first. *)

val null : sink
(** Accepts and discards every event (for benchmarking the hot path). *)

(** {1 Trace invariants}

    Pure checks over recorded event lists; the trace-invariant test
    suite and the golden tests run {!check} with {!standard}. *)

type invariant

val invariant : name:string -> (event list -> string option) -> invariant
(** The function returns [Some message] describing the first violation,
    [None] if the trace satisfies the invariant. *)

val invariant_name : invariant -> string

val rounds_increase : invariant
(** [Round_start] rounds are strictly increasing. *)

val no_emission_after_drain : invariant
(** After [Halt] at round [h], no [Emit] occurs past [h + drain] (drain
    taken from [Run_start], 0 if absent). *)

val switch_follows_negative : invariant
(** Every [Switch] is immediately preceded (in sense order) by a
    negative [Sense] verdict. *)

val standard : invariant list
(** The three invariants above. *)

val split_runs : event list -> event list list
(** Group a (possibly multi-run) event stream into runs: each
    [Run_start] opens a new segment; events before the first
    [Run_start], if any, form a leading segment.  Concatenating the
    segments restores the input. *)

val check : invariant list -> event list -> (unit, string) result
(** First violated invariant, as ["<invariant>: <detail>"].  Checked
    per run (see {!split_runs}): round numbers restart at each
    [Run_start], so invariants quantify over single runs. *)
