let map ?jobs ?pool f xs =
  match pool with
  | Some p -> Goalcom_par.Pool.map_list p f xs
  | None ->
      let jobs =
        match jobs with
        | Some j ->
            if j <= 0 then invalid_arg "Sweep.map: jobs must be positive";
            j
        | None -> Goalcom_par.Pool.default_jobs ()
      in
      Goalcom_par.Pool.with_pool ~jobs (fun p ->
          Goalcom_par.Pool.map_list p f xs)

let product xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs
