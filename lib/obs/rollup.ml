open Goalcom
open Goalcom_prelude

(* Streaming per-session rollups over the supervise stream.

   The fleet-level view of a serve/chaos run: per-server-class counters
   of every supervision decision, a histogram of rounds-to-goal, and a
   histogram of session latency (admit tick -> done tick), folded event
   by event so nothing retains full traces.  All state is integers, so
   two rollups fed the same decisions — or one rollup fed the merge of
   two disjoint streams — agree bit for bit; percentiles come from
   fixed-bucket histograms whose merge is element-wise addition, which
   is what makes the jobs {1,2,4} determinism test possible.

   Wall-clock enters only through the optional [clock] (sessions/sec
   needs it); everything else is deterministic, and a clock-less rollup
   snapshot is a pure function of the supervise stream (the golden
   stats test pins one). *)

(* HDR-style fixed-bucket histogram over non-negative ints.  Values
   0..63 get exact unit buckets; beyond that, each power-of-two octave
   splits into 32 sub-buckets, bounding relative error by 1/32 (~3%).
   Quantiles report the bucket's inclusive upper bound, so small exact
   values quantise exactly.  Merge is element-wise addition: counts
   commute, so sharded collection is deterministic. *)
module Hist = struct
  let linear = 64
  let sub = 32
  let octaves = 57 (* 2^6 .. 2^62: every non-negative OCaml int *)
  let nbuckets = linear + (octaves * sub)

  type t = { counts : int array; mutable total : int; mutable sum : int }

  let create () = { counts = Array.make nbuckets 0; total = 0; sum = 0 }

  let bucket_of v =
    if v < linear then if v < 0 then 0 else v
    else begin
      let rec msb acc v = if v <= 1 then acc else msb (acc + 1) (v lsr 1) in
      let m = msb 0 v in
      (* m >= 6: the octave is m - 6, the sub-bucket the 5 bits below
         the leading one. *)
      linear + ((m - 6) * sub) + ((v lsr (m - 5)) land (sub - 1))
    end

  (* Inclusive upper bound of bucket [i] — the value a quantile in this
     bucket reports. *)
  let upper_of i =
    if i < linear then i
    else
      let o = (i - linear) / sub and s = (i - linear) mod sub in
      (1 lsl (o + 6)) + ((s + 1) lsl (o + 1)) - 1

  let add t v =
    let v = if v < 0 then 0 else v in
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum + v

  let merge ~into src =
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
    into.total <- into.total + src.total;
    into.sum <- into.sum + src.sum

  let total t = t.total
  let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total

  let percentile q t =
    if t.total = 0 then 0
    else begin
      let rank =
        let r = int_of_float (ceil (q /. 100. *. float_of_int t.total)) in
        if r < 1 then 1 else if r > t.total then t.total else r
      in
      let i = ref 0 and seen = ref 0 in
      while !seen < rank do
        seen := !seen + t.counts.(!i);
        incr i
      done;
      upper_of (!i - 1)
    end
end

(* Per-class counters: one slot per supervision action that terminates,
   starts or refuses a session.  [admitted] counts both immediate and
   queued admissions.  [delivered] / [collisions] come from shared-world
   group arbiters (lib/net Medium via the engine's group report): frames
   a session got through its medium slot, and slots it clashed in. *)
type counts = {
  mutable admitted : int;
  mutable shed : int;
  mutable started : int;
  mutable restarts : int;
  mutable completed : int;
  mutable failed : int;  (* failed incarnations (pre-restart-policy) *)
  mutable gave_up : int;
  mutable deadlines : int;
  mutable wedges : int;
  mutable kills : int;
  mutable trips : int;
  mutable delivered : int;
  mutable collisions : int;
}

let zero_counts () =
  {
    admitted = 0;
    shed = 0;
    started = 0;
    restarts = 0;
    completed = 0;
    failed = 0;
    gave_up = 0;
    deadlines = 0;
    wedges = 0;
    kills = 0;
    trips = 0;
    delivered = 0;
    collisions = 0;
  }

type t = {
  class_of : int -> string;
  clock : (unit -> float) option;
  t0 : float;
  classes : (string, counts) Hashtbl.t;
  admit_tick : (int, int) Hashtbl.t;  (* session -> tick it was admitted *)
  latency : Hist.t;  (* admit tick -> done tick, completed sessions *)
  rounds : Hist.t;  (* rounds-to-goal, completed sessions *)
  mutable ticks : int;
  mutable rounds_total : int;
}

let create ?clock ?(class_of = fun _ -> "all") () =
  {
    class_of;
    clock;
    t0 = (match clock with Some c -> c () | None -> 0.);
    classes = Hashtbl.create 8;
    admit_tick = Hashtbl.create 256;
    latency = Hist.create ();
    rounds = Hist.create ();
    ticks = 0;
    rounds_total = 0;
  }

let counts_for t cls =
  match Hashtbl.find_opt t.classes cls with
  | Some c -> c
  | None ->
      let c = zero_counts () in
      Hashtbl.add t.classes cls c;
      c

let supervise t ~tick ~session ~action ~detail =
  if tick > t.ticks then t.ticks <- tick;
  let c = counts_for t (t.class_of session) in
  match action with
  | "admit" ->
      c.admitted <- c.admitted + 1;
      Hashtbl.replace t.admit_tick session tick
  | "shed" -> c.shed <- c.shed + 1
  | "start" -> c.started <- c.started + 1
  | "restart" -> c.restarts <- c.restarts + 1
  | "kill" -> c.kills <- c.kills + 1
  | "fail" -> c.failed <- c.failed + 1
  | "wedge" -> c.wedges <- c.wedges + 1
  | "give-up" ->
      c.gave_up <- c.gave_up + 1;
      Hashtbl.remove t.admit_tick session
  | "deadline" ->
      c.deadlines <- c.deadlines + 1;
      Hashtbl.remove t.admit_tick session
  | "trip" -> c.trips <- c.trips + 1
  | "deliver" -> c.delivered <- c.delivered + 1
  | "collide" -> c.collisions <- c.collisions + 1
  | "done" ->
      c.completed <- c.completed + 1;
      let rounds =
        try Scanf.sscanf detail "rounds=%d" (fun r -> r) with _ -> 0
      in
      Hist.add t.rounds rounds;
      t.rounds_total <- t.rounds_total + rounds;
      let admitted =
        match Hashtbl.find_opt t.admit_tick session with
        | Some a -> a
        | None -> tick
      in
      Hashtbl.remove t.admit_tick session;
      Hist.add t.latency (tick - admitted)
  | _ -> () (* half-open, close, future actions: not aggregated *)

let observe t (ev : Trace.event) =
  match ev with
  | Trace.Supervise { tick; session; action; detail } ->
      supervise t ~tick ~session ~action ~detail
  | _ -> ()

let sink t ev = observe t ev

let merge ~into src =
  Hashtbl.iter
    (fun cls (c : counts) ->
      let d = counts_for into cls in
      d.admitted <- d.admitted + c.admitted;
      d.shed <- d.shed + c.shed;
      d.started <- d.started + c.started;
      d.restarts <- d.restarts + c.restarts;
      d.completed <- d.completed + c.completed;
      d.failed <- d.failed + c.failed;
      d.gave_up <- d.gave_up + c.gave_up;
      d.deadlines <- d.deadlines + c.deadlines;
      d.wedges <- d.wedges + c.wedges;
      d.kills <- d.kills + c.kills;
      d.trips <- d.trips + c.trips;
      d.delivered <- d.delivered + c.delivered;
      d.collisions <- d.collisions + c.collisions)
    src.classes;
  Hashtbl.iter
    (fun session tick ->
      if not (Hashtbl.mem into.admit_tick session) then
        Hashtbl.replace into.admit_tick session tick)
    src.admit_tick;
  Hist.merge ~into:into.latency src.latency;
  Hist.merge ~into:into.rounds src.rounds;
  if src.ticks > into.ticks then into.ticks <- src.ticks;
  into.rounds_total <- into.rounds_total + src.rounds_total

(* Snapshots: the immutable rendering-side view. *)

type class_stats = {
  cls : string;
  admitted : int;
  shed : int;
  started : int;
  restarts : int;
  completed : int;
  failed : int;
  gave_up : int;
  deadlines : int;
  wedges : int;
  kills : int;
  trips : int;
  delivered : int;
  collisions : int;
}

type snapshot = {
  ticks : int;
  classes : class_stats list;  (* sorted by class name *)
  totals : class_stats;  (* [cls = "total"] *)
  latency_p50 : int;
  latency_p99 : int;
  latency_p999 : int;
  rounds_p50 : int;
  rounds_p99 : int;
  rounds_p999 : int;
  rounds_total : int;
  wall_s : float option;
  sessions_per_sec : float option;
}

let freeze cls (c : counts) =
  {
    cls;
    admitted = c.admitted;
    shed = c.shed;
    started = c.started;
    restarts = c.restarts;
    completed = c.completed;
    failed = c.failed;
    gave_up = c.gave_up;
    deadlines = c.deadlines;
    wedges = c.wedges;
    kills = c.kills;
    trips = c.trips;
    delivered = c.delivered;
    collisions = c.collisions;
  }

let snapshot (t : t) =
  let classes =
    Hashtbl.fold (fun cls c acc -> freeze cls c :: acc) t.classes []
    |> List.sort (fun a b -> compare a.cls b.cls)
  in
  let totals =
    List.fold_left
      (fun acc c ->
        {
          acc with
          admitted = acc.admitted + c.admitted;
          shed = acc.shed + c.shed;
          started = acc.started + c.started;
          restarts = acc.restarts + c.restarts;
          completed = acc.completed + c.completed;
          failed = acc.failed + c.failed;
          gave_up = acc.gave_up + c.gave_up;
          deadlines = acc.deadlines + c.deadlines;
          wedges = acc.wedges + c.wedges;
          kills = acc.kills + c.kills;
          trips = acc.trips + c.trips;
          delivered = acc.delivered + c.delivered;
          collisions = acc.collisions + c.collisions;
        })
      (freeze "total" (zero_counts ()))
      classes
  in
  let wall_s =
    match t.clock with Some c -> Some (c () -. t.t0) | None -> None
  in
  let sessions_per_sec =
    match wall_s with
    | Some w when w > 0. -> Some (float_of_int totals.completed /. w)
    | _ -> None
  in
  {
    ticks = t.ticks;
    classes;
    totals;
    latency_p50 = Hist.percentile 50. t.latency;
    latency_p99 = Hist.percentile 99. t.latency;
    latency_p999 = Hist.percentile 99.9 t.latency;
    rounds_p50 = Hist.percentile 50. t.rounds;
    rounds_p99 = Hist.percentile 99. t.rounds;
    rounds_p999 = Hist.percentile 99.9 t.rounds;
    rounds_total = t.rounds_total;
    wall_s;
    sessions_per_sec;
  }

(* Renderings: terminal table (goalcom top / serve), Prometheus text
   exposition and JSON snapshots (--stats). *)

let table s =
  let row (c : class_stats) =
    [
      c.cls;
      Table.cell_int c.admitted;
      Table.cell_int c.shed;
      Table.cell_int c.started;
      Table.cell_int c.restarts;
      Table.cell_int c.completed;
      Table.cell_int c.failed;
      Table.cell_int c.gave_up;
      Table.cell_int c.deadlines;
      Table.cell_int c.wedges;
      Table.cell_int c.kills;
      Table.cell_int c.trips;
      Table.cell_int c.delivered;
      Table.cell_int c.collisions;
    ]
  in
  let rate =
    match s.sessions_per_sec with
    | Some r -> Printf.sprintf "; %.0f sessions/sec" r
    | None -> ""
  in
  Table.make ~title:"session rollup (by server class)"
    ~columns:
      [
        "class"; "admit"; "shed"; "start"; "restart"; "done"; "fail";
        "give-up"; "deadline"; "wedge"; "kill"; "trip"; "deliver";
        "collide";
      ]
    ~notes:
      [
        Printf.sprintf "tick %d%s" s.ticks rate;
        Printf.sprintf "latency ticks p50/p99/p999 %d/%d/%d" s.latency_p50
          s.latency_p99 s.latency_p999;
        Printf.sprintf "rounds-to-goal p50/p99/p999 %d/%d/%d (total %d)"
          s.rounds_p50 s.rounds_p99 s.rounds_p999 s.rounds_total;
      ]
    (List.map row (s.classes @ [ s.totals ]))

let to_prometheus s =
  let b = Buffer.create 1024 in
  let counter name help cell =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n# TYPE %s counter\n" name help name);
    List.iter
      (fun (c : class_stats) ->
        List.iter
          (fun (action, v) ->
            Buffer.add_string b
              (Printf.sprintf "%s{class=%S,action=%S} %d\n" name c.cls action v))
          (cell c))
      s.classes
  in
  counter "goalcom_sessions_total" "Supervision decisions per server class."
    (fun c ->
      [
        ("admitted", c.admitted);
        ("shed", c.shed);
        ("started", c.started);
        ("restarted", c.restarts);
        ("done", c.completed);
        ("failed", c.failed);
        ("gave_up", c.gave_up);
        ("deadline", c.deadlines);
        ("wedged", c.wedges);
        ("killed", c.kills);
        ("tripped", c.trips);
        ("delivered", c.delivered);
        ("collided", c.collisions);
      ]);
  Buffer.add_string b "# TYPE goalcom_ticks gauge\n";
  Buffer.add_string b (Printf.sprintf "goalcom_ticks %d\n" s.ticks);
  let summary name (p50, p99, p999) =
    Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" name);
    List.iter
      (fun (q, v) ->
        Buffer.add_string b (Printf.sprintf "%s{quantile=%S} %d\n" name q v))
      [ ("0.5", p50); ("0.99", p99); ("0.999", p999) ]
  in
  summary "goalcom_session_latency_ticks" (s.latency_p50, s.latency_p99, s.latency_p999);
  summary "goalcom_rounds_to_goal" (s.rounds_p50, s.rounds_p99, s.rounds_p999);
  Buffer.add_string b "# TYPE goalcom_rounds_total counter\n";
  Buffer.add_string b (Printf.sprintf "goalcom_rounds_total %d\n" s.rounds_total);
  (match s.sessions_per_sec with
  | Some r ->
      Buffer.add_string b "# TYPE goalcom_sessions_per_sec gauge\n";
      Buffer.add_string b (Printf.sprintf "goalcom_sessions_per_sec %.3f\n" r)
  | None -> ());
  Buffer.contents b

let add_class_json b (c : class_stats) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"class\":%S,\"admitted\":%d,\"shed\":%d,\"started\":%d,\"restarts\":%d,\"done\":%d,\"failed\":%d,\"gave_up\":%d,\"deadlines\":%d,\"wedges\":%d,\"kills\":%d,\"trips\":%d,\"delivered\":%d,\"collisions\":%d}"
       c.cls c.admitted c.shed c.started c.restarts c.completed c.failed
       c.gave_up c.deadlines c.wedges c.kills c.trips c.delivered
       c.collisions)

let to_json s =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\"ticks\":%d," s.ticks);
  (match s.wall_s with
  | Some w -> Buffer.add_string b (Printf.sprintf "\"wall_s\":%.6f," w)
  | None -> ());
  (match s.sessions_per_sec with
  | Some r -> Buffer.add_string b (Printf.sprintf "\"sessions_per_sec\":%.3f," r)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf
       "\"latency_ticks\":{\"p50\":%d,\"p99\":%d,\"p999\":%d},\"rounds\":{\"p50\":%d,\"p99\":%d,\"p999\":%d,\"total\":%d},\"classes\":["
       s.latency_p50 s.latency_p99 s.latency_p999 s.rounds_p50 s.rounds_p99
       s.rounds_p999 s.rounds_total);
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      add_class_json b c)
    s.classes;
  Buffer.add_string b "],\"totals\":";
  add_class_json b s.totals;
  Buffer.add_char b '}';
  Buffer.contents b

(* Reading a snapshot back (goalcom top polls the JSON file a running
   serve writes).  Inverse of [to_json] up to float formatting. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let int_field name j =
  match Option.bind (Json.member name j) Json.int_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing int field %S" name)

let class_of_json j =
  let* cls =
    match Option.bind (Json.member "class" j) Json.string_opt with
    | Some s -> Ok s
    | None -> Error "missing class name"
  in
  let* admitted = int_field "admitted" j in
  let* shed = int_field "shed" j in
  let* started = int_field "started" j in
  let* restarts = int_field "restarts" j in
  let* completed = int_field "done" j in
  let* failed = int_field "failed" j in
  let* gave_up = int_field "gave_up" j in
  let* deadlines = int_field "deadlines" j in
  let* wedges = int_field "wedges" j in
  let* kills = int_field "kills" j in
  let* trips = int_field "trips" j in
  (* Absent in snapshots written before the shared-medium counters
     existed: read as 0 rather than rejecting the file. *)
  let opt_field name =
    match Option.bind (Json.member name j) Json.int_opt with
    | Some v -> v
    | None -> 0
  in
  let delivered = opt_field "delivered" in
  let collisions = opt_field "collisions" in
  Ok
    {
      cls;
      admitted;
      shed;
      started;
      restarts;
      completed;
      failed;
      gave_up;
      deadlines;
      wedges;
      kills;
      trips;
      delivered;
      collisions;
    }

let snapshot_of_json j =
  let* ticks = int_field "ticks" j in
  let sub name field =
    match Json.member name j with
    | Some o -> int_field field o
    | None -> Error (Printf.sprintf "missing object %S" name)
  in
  let* latency_p50 = sub "latency_ticks" "p50" in
  let* latency_p99 = sub "latency_ticks" "p99" in
  let* latency_p999 = sub "latency_ticks" "p999" in
  let* rounds_p50 = sub "rounds" "p50" in
  let* rounds_p99 = sub "rounds" "p99" in
  let* rounds_p999 = sub "rounds" "p999" in
  let* rounds_total = sub "rounds" "total" in
  let* classes =
    match Option.bind (Json.member "classes" j) Json.list_opt with
    | None -> Error "missing classes array"
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* c = class_of_json item in
            Ok (c :: acc))
          (Ok []) items
        |> Result.map List.rev
  in
  let* totals =
    match Json.member "totals" j with
    | Some o -> class_of_json o
    | None -> Error "missing totals"
  in
  Ok
    {
      ticks;
      classes;
      totals;
      latency_p50;
      latency_p99;
      latency_p999;
      rounds_p50;
      rounds_p99;
      rounds_p999;
      rounds_total;
      wall_s = Option.bind (Json.member "wall_s" j) Json.number_opt;
      sessions_per_sec =
        Option.bind (Json.member "sessions_per_sec" j) Json.number_opt;
    }
