lib/core/forgiving.ml: Exec Format Goal Goalcom_prelude List Listx Outcome Printf Rng Strategy
