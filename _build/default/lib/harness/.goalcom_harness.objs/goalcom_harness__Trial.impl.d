lib/harness/trial.ml: Exec Float Format Goal Goalcom Goalcom_prelude List Outcome Rng Stats
