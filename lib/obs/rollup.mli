(** Streaming per-session rollups over the supervise stream.

    The fleet-level view of a serve/chaos run, folded decision by
    decision so nothing retains full traces: per-server-class counters
    of every supervision action (admitted / shed / restarts / trips /
    done / failed / ...), a rounds-to-goal histogram, a session-latency
    histogram (admit tick → done tick), and — when a [clock] is
    supplied — sessions/sec.

    {b Determinism.}  All aggregation state is integer counters and
    fixed-bucket histograms; {!merge} is element-wise addition.  Two
    rollups fed the same supervise decisions agree bit for bit whatever
    the engine's [jobs] count (the engine makes supervision decisions
    in its sequential phase), and a clock-less snapshot is a pure
    function of the stream — the golden stats test pins one.  Wall
    clock enters only through [clock], and only into [wall_s] /
    [sessions_per_sec].

    Feed a rollup either from the engine's [on_supervise] hook (live,
    no tracing needed) or from a recorded stream via {!observe} /
    {!sink} (only [Trace.Supervise] events are aggregated). *)

(** Fixed-bucket (HDR-style) histogram over non-negative ints: values
    [0..63] in exact unit buckets, then 32 sub-buckets per power-of-two
    octave — relative quantisation error is bounded by 1/32.  Negative
    values clamp to 0.  Quantiles report the matched bucket's inclusive
    upper bound, so small exact values quantise exactly. *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val total : t -> int
  val mean : t -> float

  val percentile : float -> t -> int
  (** [percentile q t] for [q] in [0..100]; 0 when empty. *)

  val merge : into:t -> t -> unit
  (** Element-wise count addition: associative, commutative, and
      bit-deterministic — merged shards equal single-stream feeding. *)

  val bucket_of : int -> int
  (** The bucket index a value lands in (exposed for the edge tests). *)

  val upper_of : int -> int
  (** Inclusive upper bound of a bucket. *)
end

type t

val create : ?clock:(unit -> float) -> ?class_of:(int -> string) -> unit -> t
(** [class_of] maps a session id to its server class (default: one
    ["all"] class).  [clock] (e.g. [Unix.gettimeofday]) enables
    [wall_s] and [sessions_per_sec] in snapshots; omit it for
    deterministic output. *)

val supervise :
  t -> tick:int -> session:int -> action:string -> detail:string -> unit
(** Fold one supervision decision (the engine's [on_supervise] hook
    calls this).  Actions are the [Trace.Supervise] vocabulary;
    unknown actions are ignored.  ["done"] details of the engine's
    ["rounds=%d ..."] shape feed the rounds histogram. *)

val observe : t -> Goalcom.Trace.event -> unit
(** Fold a [Trace.Supervise] event; every other event is ignored. *)

val sink : t -> Goalcom.Trace.sink

val merge : into:t -> t -> unit
(** Add [src]'s counters and histograms into [into] (deterministic;
    see the module preamble). *)

(** {1 Snapshots} *)

type class_stats = {
  cls : string;
  admitted : int;
  shed : int;
  started : int;
  restarts : int;
  completed : int;
  failed : int;  (** failed incarnations, before the restart policy *)
  gave_up : int;
  deadlines : int;
  wedges : int;
  kills : int;
  trips : int;
  delivered : int;
      (** frames a shared-world arbiter delivered for this class's
          sessions (the engine group report's ["deliver"] action —
          lib/net Medium slots won) *)
  collisions : int;  (** medium slots this class's sessions clashed in *)
}

type snapshot = {
  ticks : int;  (** highest tick seen *)
  classes : class_stats list;  (** sorted by class name *)
  totals : class_stats;  (** summed, [cls = "total"] *)
  latency_p50 : int;  (** admit→done latency in ticks, completed sessions *)
  latency_p99 : int;
  latency_p999 : int;
  rounds_p50 : int;  (** rounds-to-goal, completed sessions *)
  rounds_p99 : int;
  rounds_p999 : int;
  rounds_total : int;
  wall_s : float option;  (** with [clock] only *)
  sessions_per_sec : float option;  (** completed / wall_s, with [clock] *)
}

val snapshot : t -> snapshot

val table : snapshot -> Goalcom_prelude.Table.t
(** The [goalcom top] / end-of-serve rendering. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition ([goalcom_sessions_total{class,action}],
    latency/rounds quantile summaries, [goalcom_sessions_per_sec]). *)

val to_json : snapshot -> string
(** One-line JSON snapshot ([serve --stats FILE] appends these;
    [goalcom top] polls the newest). *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!to_json} up to float formatting. *)
