lib/core/universal.mli: Goalcom_automata Levin Sensing Seq Strategy
