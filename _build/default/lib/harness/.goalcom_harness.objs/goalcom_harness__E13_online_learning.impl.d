lib/harness/e13_online_learning.ml: Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers List Listx Outcome Prediction Printf Rng Stats Table Transform
