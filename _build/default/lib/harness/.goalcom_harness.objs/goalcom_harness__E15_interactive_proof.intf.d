lib/harness/e15_interactive_proof.mli: Goalcom_prelude
