(* Online learning as goal-oriented communication (the Juba–Vempala
   connection the paper points to): the world scores predictions of a
   secret parity concept; "achieving the goal" = finitely many
   mistakes.  Three routes to success:
     - ask a teacher (if you can figure out its dialect),
     - learn the concept yourself (halving algorithm, no server at all),
     - be universal over a class containing both.

   Run with:  dune exec examples/learning_demo.exe *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let alphabet = 3
let params = { Prediction.num_attributes = 6 }
let goal = Prediction.goal ~params ~alphabet ()
let horizon = 1200

let show label user server seed =
  let history =
    Exec.run ~config:(Exec.config ~horizon ()) ~goal ~user ~server (Rng.make seed)
  in
  let outcome = Outcome.judge goal history in
  Format.printf "%-36s mistakes=%4d  converged=%b@." label
    (Prediction.mistakes history)
    outcome.Outcome.achieved

let () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let d i = Enum.get_exn dialects i in
  Format.printf
    "secret parity concept over %d attributes; %d rounds; mistake counts:@.@."
    params.Prediction.num_attributes horizon;
  show "teacher-user, right dialect"
    (Prediction.teacher_user ~params ~alphabet (d 0))
    (Prediction.server ~alphabet (d 0))
    1;
  show "teacher-user, wrong dialect"
    (Prediction.teacher_user ~params ~alphabet (d 1))
    (Prediction.server ~alphabet (d 0))
    2;
  show "halving learner, no server"
    (Prediction.learner_user ~params ())
    (Transform.silent ())
    3;
  show "universal, teacher server"
    (Prediction.universal_user ~params ~alphabet dialects)
    (Prediction.server ~alphabet (d 2))
    4;
  show "universal, silent server"
    (Prediction.universal_user ~params ~alphabet dialects)
    (Transform.silent ())
    5;
  Format.printf
    "@.the halving learner's mistakes stay below n = %d; the universal user@."
    params.Prediction.num_attributes;
  Format.printf
    "converges with any server, because the learner is in its class.@."
