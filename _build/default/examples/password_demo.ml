(* Why the enumeration overhead is essentially necessary: a lock that
   gives no feedback on wrong guesses.  Every lock is helpful (the user
   that knows the password opens it immediately), sensing is safe and
   viable — and still, any universal user must pay about half the
   password space.

   Run with:  dune exec examples/password_demo.exe *)

open Goalcom
open Goalcom_prelude
open Goalcom_goals

let () =
  let goal = Password.goal () in
  Format.printf "the lock accepts one password out of N; wrong guesses produce silence@.@.";
  List.iter
    (fun space ->
      let secrets = [ 0; space / 2; space - 1 ] in
      let costs =
        List.map
          (fun w ->
            let server = Password.server_with_password w in
            let user = Password.sweeper ~space in
            let history =
              Exec.run
                ~config:(Exec.config ~horizon:(8 * (space + 10)) ())
                ~goal ~user ~server (Rng.make (space + w))
            in
            (w, History.length history))
          secrets
      in
      Format.printf "N = %3d:" space;
      List.iter (fun (w, c) -> Format.printf "  secret=%3d -> %4d rounds" w c) costs;
      Format.printf "@.")
    [ 8; 32; 128 ];
  Format.printf
    "@.the informed user always needs ~4 rounds; the universal sweeper pays@.";
  Format.printf
    "rounds proportional to the secret's position — no sensing can help,@.";
  Format.printf "because the lock is silent until the first success.@."
