(** The control goal — a {e compact} goal (§3's infinite-execution case).

    The {b world} is a drifting plant: an integer position that each
    round moves by a random upward drift plus the force applied by the
    actuator.  The {b server} is the actuator driver; it understands
    LEFT/RIGHT commands in its own dialect.  The referee judges every
    prefix: a prefix is acceptable iff the plant is currently within
    [±bound].  The goal is achieved iff only finitely many prefixes are
    unacceptable — i.e. the user eventually keeps the plant in range
    forever.

    An uncontrolled (or wrongly-controlled) plant is pushed to the
    physical stop [±limit] by the drift and stays out of range, so every
    non-adapting wrong-dialect user fails; the informed user applies
    force against the sign of the position and keeps the plant within a
    few cells of the origin.

    Canonical commands: [left_cmd = 0] (force [-force]),
    [right_cmd = 1] (force [+force]), and inert padding. *)

open Goalcom
open Goalcom_automata

val left_cmd : int
val right_cmd : int

val min_alphabet : int
(** 3. *)

type params = {
  bound : int;  (** referee: acceptable iff |plant| <= bound *)
  limit : int;  (** physical stop: plant is clamped to [±limit] *)
  force : int;  (** magnitude of the actuator force *)
  max_drift : int;  (** per-round drift is uniform in [0..max_drift] *)
}

val default_params : params
(** [{ bound = 10; limit = 24; force = 2; max_drift = 1 }].  The drift
    mean (0.5) is positive, so an uncontrolled plant reaches the stop
    and stays out of range; the force exceeds the worst-case drift, so
    the informed controller makes progress every round; and the bound
    leaves headroom for the 3-round actuation latency of the
    user→server→world loop (the controller acts on a stale reading
    while crossing zero). *)

val actuator : alphabet:int -> Strategy.server
(** Forwards canonical LEFT/RIGHT to the world; ignores the rest. *)

val server : alphabet:int -> Dialect.t -> Strategy.server
val server_class : alphabet:int -> Dialect.t Enum.t -> Strategy.server Enum.t

val world : ?params:params -> unit -> World.t
(** State view: [Int plant_position].  Broadcasts the position to the
    user each round. *)

val goal : ?params:params -> alphabet:int -> unit -> Goal.t

val informed_user : alphabet:int -> Dialect.t -> Strategy.user
(** Pushes against the plant's sign every round (never halts). *)

val user_class : alphabet:int -> Dialect.t Enum.t -> Strategy.user Enum.t

val sensing : ?params:params -> unit -> Sensing.t
(** Negative iff the latest broadcast position is out of range —
    compact-safe (a failing execution keeps violating, hence keeps
    signalling) and viable (the informed user eventually stays in
    range). *)

val universal_user :
  ?grace:int ->
  ?stats:Universal.stats ->
  ?params:params ->
  alphabet:int ->
  Dialect.t Enum.t ->
  Strategy.user
(** {!Universal.compact} over {!user_class} with {!sensing}. *)
