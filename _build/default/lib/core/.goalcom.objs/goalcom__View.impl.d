lib/core/view.ml: Goalcom_prelude History List Listx Msg
