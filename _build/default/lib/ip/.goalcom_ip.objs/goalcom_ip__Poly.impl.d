lib/ip/poly.ml: Array Gf
