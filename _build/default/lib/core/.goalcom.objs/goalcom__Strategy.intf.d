lib/core/strategy.mli: Goalcom_prelude Io
