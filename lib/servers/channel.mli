(** Channel imperfections on the user↔server link.

    The paper's model has perfect synchronous channels; real links add
    latency and loss.  These wrappers fold an imperfect link into the
    server strategy (the composition of a channel and a server is
    itself a server strategy, so the theory applies unchanged — the
    class just gets bigger).  The robustness experiment (E12) measures
    how much link delay the universal constructions tolerate. *)

open Goalcom

val delayed : rounds:int -> Strategy.server -> Strategy.server
(** Adds [rounds] extra rounds of latency in {e each} direction of the
    user↔server link (so a round trip grows by [2*rounds]).  The
    server↔world channels are untouched.
    @raise Invalid_argument if [rounds < 0]. *)

val drop_inbound : drop_prob:float -> Strategy.server -> Strategy.server
(** Each user→server message is lost (replaced by silence) with the
    given probability — the inbound counterpart of
    {!Transform.noisy}.  Randomness comes from the per-step RNG, so
    runs are deterministic given the execution seed and independent
    across instances.
    @raise Invalid_argument if the probability is out of range. *)

val duplicate_outbound : Strategy.server -> Strategy.server
(** Every non-silent server→user message is delivered again on the
    next silent round (a stuttering link); duplicates of back-to-back
    emissions are queued, never lost.  Useful for checking that user
    strategies tolerate duplicated feedback. *)
