(* Tests for the fault-injection layer and the crash-tolerance
   machinery it motivates: the Fault combinators, qcheck properties
   (safety under faults, determinism, identity faults), checkpointed
   enumeration resume, the wedge detector, retry backoff, tolerant
   sensing, and the E16 invariants. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_faults

let alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet

let fault_of spec =
  match Fault.stack_of_string ~alphabet spec with
  | Ok f -> f
  | Error e -> Alcotest.fail e

(* Driving a server strategy directly, one message per round. *)

let echo_server =
  Strategy.stateless ~name:"echo" (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Silence -> Io.Server.silent
      | m -> Io.Server.say_user m)

let drive ?(seed = 1) server msgs =
  let rng = Rng.make seed in
  let inst = Strategy.Instance.create server in
  List.map
    (fun m ->
      (Strategy.Instance.step rng inst
         { Io.Server.from_user = m; from_world = Msg.Silence })
        .Io.Server.to_user)
    msgs

(* Combinator unit tests *)

let counter_server =
  (* Replies [Int n] where n counts the rounds served so far — state
     that a crash visibly wipes. *)
  Strategy.make ~name:"counter"
    ~init:(fun () -> 0)
    ~step:(fun _rng n (_ : Io.Server.obs) ->
      (n + 1, Io.Server.say_user (Msg.Int (n + 1))))

let test_crash_restart_resets_state () =
  let faulted = Fault.apply (fault_of "crash:3") counter_server in
  let outs = drive faulted (List.init 7 (fun _ -> Msg.Int 0)) in
  Alcotest.(check bool)
    "counter wiped every 3 rounds" true
    (outs
    = [ Msg.Int 1; Msg.Int 2; Msg.Int 3; Msg.Int 1; Msg.Int 2; Msg.Int 3;
        Msg.Int 1 ])

let test_intermittent_outage_is_silent () =
  let faulted = Fault.apply (fault_of "intermittent:2,2") echo_server in
  let outs = drive faulted (List.init 6 (fun i -> Msg.Int i)) in
  Alcotest.(check bool)
    "on 2 / off 2 schedule" true
    (outs
    = [ Msg.Int 0; Msg.Int 1; Msg.Silence; Msg.Silence; Msg.Int 4; Msg.Int 5 ])

let test_adversary_budget_exhausts () =
  let faulted = Fault.apply (fault_of "adversary:2") echo_server in
  let outs = drive faulted (List.init 5 (fun i -> Msg.Int i)) in
  (* The first two inbound messages are starved (echo hears silence);
     once the budget is spent the link is transparent. *)
  Alcotest.(check bool)
    "clean after budget" true
    (List.filteri (fun i _ -> i >= 2) outs = [ Msg.Int 2; Msg.Int 3; Msg.Int 4 ]);
  Alcotest.(check bool)
    "starved within budget" true
    (List.nth outs 0 = Msg.Silence && List.nth outs 1 = Msg.Silence)

let test_reorder_conserves_messages () =
  let faulted = Fault.apply (fault_of "reorder:3") echo_server in
  let sent = List.init 8 (fun i -> Msg.Int i) in
  let outs =
    drive faulted (sent @ List.init 8 (fun _ -> Msg.Silence))
  in
  let delivered = List.filter (fun m -> m <> Msg.Silence) outs in
  Alcotest.(check int) "nothing lost or invented" 8 (List.length delivered);
  Alcotest.(check bool)
    "same multiset" true
    (List.sort compare delivered = List.sort compare sent)

let test_corrupt_flips_to_valid_symbol () =
  let faulted = Fault.apply (Fault.corrupt ~alphabet ~prob:1.0) echo_server in
  let outs = drive faulted (List.init 20 (fun _ -> Msg.Sym 2)) in
  List.iter
    (function
      | Msg.Sym s ->
          Alcotest.(check bool) "valid symbol" true (s >= 0 && s < alphabet)
      | Msg.Silence -> ()
      | m -> Alcotest.failf "unexpected message %s" (Format.asprintf "%a" Msg.pp m))
    outs;
  (* Corruption happens on both directions, so a double flip can land
     back on 2; what cannot happen is every output being 2. *)
  Alcotest.(check bool)
    "some symbol changed" true
    (List.exists (fun m -> m <> Msg.Sym 2 && m <> Msg.Silence) outs)

let test_compose_order_and_name () =
  let f = Fault.compose (Fault.delay ~rounds:1) Fault.duplicate in
  Alcotest.(check string) "name" "delay(1)+dup" (Fault.name f);
  Alcotest.(check string) "nop unit" "delay(1)"
    (Fault.name (Fault.compose (Fault.delay ~rounds:1) Fault.nop));
  Alcotest.(check string) "stack of none" "nop" (Fault.name (Fault.stack []))

let test_spec_parser () =
  (match Fault.of_string ~alphabet "burst:0.1,0.2,0.9" with
  | Ok f -> Alcotest.(check string) "burst name" "burst(0.10,0.20,0.90)" (Fault.name f)
  | Error e -> Alcotest.fail e);
  (match Fault.stack_of_string ~alphabet "corrupt:0.05+crash:60" with
  | Ok f -> Alcotest.(check string) "stack name" "corrupt(0.05)+crash(60)" (Fault.name f)
  | Error e -> Alcotest.fail e);
  (match Fault.of_string ~alphabet "bogus:1" with
  | Ok _ -> Alcotest.fail "bogus spec accepted"
  | Error _ -> ());
  match Fault.of_string ~alphabet "drop:1.5" with
  | Ok _ -> Alcotest.fail "out-of-range prob accepted"
  | Error _ -> ()

(* Malformed specs must come back with an error a user can act on: the
   offending token, and — for unknown names — the full vocabulary. *)
let test_spec_errors () =
  let err spec =
    match Fault.stack_of_string ~alphabet spec with
    | Ok _ -> Alcotest.failf "malformed spec %S accepted" spec
    | Error e -> e
  in
  let check_contains spec needle =
    let e = err spec in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      nn = 0 || go 0
    in
    if not (contains e needle) then
      Alcotest.failf "error for %S does not mention %s: %s" spec needle e
  in
  (* Unknown names: the token itself plus every valid fault name. *)
  check_contains "bogus:1" "unknown fault \"bogus\"";
  List.iter
    (fun name -> check_contains "bogus:1" name)
    [
      "nop"; "delay:K"; "drop:P"; "dup"; "corrupt:P"; "reorder:K";
      "burst:PENTER,PEXIT,PDROP"; "crash:K"; "intermittent:ON,OFF";
      "adversary:B";
    ];
  check_contains "dealy:3" "unknown fault \"dealy\"";
  (* Wrong arity quotes the expected shape of the named fault. *)
  check_contains "delay" "\"delay\" wants the form delay:K";
  check_contains "delay:1,2" "\"delay\" wants the form delay:K";
  check_contains "burst:0.1,0.2" "\"burst\" wants the form burst:PENTER,PEXIT,PDROP";
  check_contains "nop:1" "\"nop\" wants the form nop";
  check_contains "intermittent:5" "\"intermittent\" wants the form intermittent:ON,OFF";
  (* Unparsable arguments and out-of-range values name the offender. *)
  check_contains "delay:x" "delay:K wants an integer";
  check_contains "drop:zz" "drop:P wants a float";
  check_contains "crash:60+drop:zz" "drop:zz";
  (* The component inside a stack is quoted, not the whole stack. *)
  check_contains "crash:60+bogus:1" "bad fault spec \"bogus:1\""

(* [loss:P] is the network-link spelling of [drop:P] (lib/net link
   specs); it must parse to the same wrapper and reject malformed
   probabilities with its own grammar name. *)
let test_loss_alias () =
  (match Fault.of_string ~alphabet "loss:0.25" with
  | Ok f -> Alcotest.(check string) "loss = drop" "drop(0.25)" (Fault.name f)
  | Error e -> Alcotest.fail e);
  (match Fault.stack_of_string ~alphabet "crash:60+loss:0.1+dup" with
  | Ok f ->
      Alcotest.(check string) "loss in a stack" "crash(60)+drop(0.10)+dup"
        (Fault.name f)
  | Error e -> Alcotest.fail e);
  let err spec =
    match Fault.of_string ~alphabet spec with
    | Ok _ -> Alcotest.failf "malformed spec %S accepted" spec
    | Error e -> e
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let check_contains spec needle =
    let e = err spec in
    if not (contains e needle) then
      Alcotest.failf "error for %S does not mention %s: %s" spec needle e
  in
  check_contains "loss:zz" "loss:P wants a float";
  check_contains "loss" "\"loss\" wants the form loss:P";
  check_contains "loss:0.1,0.2" "\"loss\" wants the form loss:P";
  check_contains "loss:1.5" "prob";
  check_contains "loss:-0.1" "prob";
  (* The alias is advertised in the unknown-name vocabulary. *)
  check_contains "bogus:1" "loss:P"

(* qcheck properties *)

let qcount = 120

let spec_frag_gen =
  QCheck.Gen.(
    oneof
      [
        return "nop";
        map (Printf.sprintf "delay:%d") (int_bound 2);
        map (fun d -> Printf.sprintf "drop:0.%d" d) (int_bound 3);
        return "dup";
        map (fun d -> Printf.sprintf "corrupt:0.%d" d) (int_bound 3);
        map (Printf.sprintf "reorder:%d") (int_bound 2);
        return "burst:0.2,0.3,0.8";
        map (fun k -> Printf.sprintf "crash:%d" (10 + k)) (int_bound 40);
        return "intermittent:10,3";
        map (Printf.sprintf "adversary:%d") (int_bound 15);
      ])

let stack_spec_gen =
  QCheck.Gen.(map (String.concat "+") (list_size (1 -- 3) spec_frag_gen))

let stack_spec_arb = QCheck.make stack_spec_gen ~print:(fun s -> s)

let doc = [ 3; 1 ]
let printing_goal = Printing.goal ~docs:[ doc ] ~alphabet ()

let faulted_printing_run ~spec ~dialect_idx ~seed ~horizon =
  let server =
    Fault.apply
      (match Fault.stack_of_string ~alphabet spec with
      | Ok f -> f
      | Error e -> invalid_arg e)
      (Printing.server ~alphabet (Enum.get_exn dialects dialect_idx))
  in
  let user = Printing.universal_user ~alphabet dialects in
  Exec.run
    ~config:(Exec.config ~horizon ())
    ~goal:printing_goal ~user ~server (Rng.make seed)

let prop_sensing_safe_under_faults =
  (* Whatever the fault stack does to the server, a positive sensing
     verdict must certify real achievement: the referee accepts the
     history prefix the verdict was computed from. *)
  QCheck.Test.make ~count:qcount ~name:"Fault: sensing never lies under faults"
    QCheck.(pair stack_spec_arb (int_bound 100_000))
    (fun (spec, seed) ->
      let history =
        faulted_printing_run ~spec ~dialect_idx:(seed mod alphabet) ~seed
          ~horizon:400
      in
      List.for_all
        (fun (round, verdict) ->
          verdict = Sensing.Negative
          || Referee.decide_finite printing_goal.Goal.referee
               (History.prefix round history))
        (Sensing.verdicts Printing.sensing history))

let prop_fault_runs_deterministic =
  QCheck.Test.make ~count:qcount ~name:"Fault: same seed, same history"
    QCheck.(pair stack_spec_arb (int_bound 100_000))
    (fun (spec, seed) ->
      let run () =
        faulted_printing_run ~spec ~dialect_idx:(seed mod alphabet) ~seed
          ~horizon:200
      in
      History.rounds (run ()) = History.rounds (run ()))

let identity_specs =
  [ "nop"; "delay:0"; "drop:0.0"; "corrupt:0.0"; "reorder:0"; "intermittent:9,0" ]

let prop_identity_faults_are_noops =
  QCheck.Test.make ~count:qcount ~name:"Fault: zero-strength faults are identity"
    QCheck.(pair (int_bound (List.length identity_specs - 1)) (int_bound 100_000))
    (fun (which, seed) ->
      let spec = List.nth identity_specs which in
      let bare =
        faulted_printing_run ~spec:"nop" ~dialect_idx:(seed mod alphabet) ~seed
          ~horizon:200
      in
      let wrapped =
        faulted_printing_run ~spec ~dialect_idx:(seed mod alphabet) ~seed
          ~horizon:200
      in
      History.rounds bare = History.rounds wrapped)

(* Checkpointed enumeration: crash-tolerant universal users *)

(* The magic-number toy goals from test_universal, small enough to
   steer the enumeration precisely. *)

let magic_world k =
  World.make
    ~name:(Printf.sprintf "magic-%d" k)
    ~init:(fun () -> false)
    ~step:(fun _rng got (obs : Io.World.obs) ->
      let got = got || obs.from_user = Msg.Int k in
      (got, Io.World.say_user (Msg.Text (if got then "done" else "no"))))
    ~view:(fun got -> Msg.Text (if got then "done" else "no"))

let magic_goal k =
  Goal.make
    ~name:(Printf.sprintf "magic-%d" k)
    ~worlds:[ magic_world k ]
    ~referee:(Referee.finite "heard" (fun views -> List.mem (Msg.Text "done") views))

let sender i =
  Strategy.make
    ~name:(Printf.sprintf "send-%d" i)
    ~init:(fun () -> ())
    ~step:(fun _rng () (_ : Io.User.obs) -> ((), Io.User.say_world (Msg.Int i)))

let senders n = Enum.tabulate ~name:"senders" n sender

let idle_server =
  Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let done_sensing =
  Sensing.of_predicate ~name:"done" (fun view ->
      List.exists
        (fun e -> e.View.from_world = Msg.Text "done")
        (View.events_rev view))

let test_finite_checkpoint_resumes_schedule () =
  let cp = Universal.new_checkpoint () in
  let user () =
    Universal.finite ~checkpoint:cp ~enum:(senders 8) ~sensing:done_sensing ()
  in
  (* First incarnation dies (horizon) long before reaching sender 7. *)
  let outcome1, _ =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:40 ())
      ~goal:(magic_goal 7) ~user:(user ()) ~server:idle_server (Rng.make 1)
  in
  Alcotest.(check bool) "first life too short" false outcome1.Outcome.achieved;
  Alcotest.(check bool) "progress checkpointed" true (cp.Universal.saved_slots > 0);
  (* The second incarnation resumes mid-schedule and finishes sooner
     than a from-scratch run would. *)
  let outcome2, resumed_history =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:2000 ())
      ~goal:(magic_goal 7) ~user:(user ()) ~server:idle_server (Rng.make 2)
  in
  Alcotest.(check bool) "resumed life succeeds" true outcome2.Outcome.achieved;
  let _, scratch_history =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:2000 ())
      ~goal:(magic_goal 7)
      ~user:(Universal.finite ~enum:(senders 8) ~sensing:done_sensing ())
      ~server:idle_server (Rng.make 2)
  in
  Alcotest.(check bool) "resume skips completed sessions" true
    (History.length resumed_history < History.length scratch_history)

let compact_world k =
  World.make
    ~name:(Printf.sprintf "compact-magic-%d" k)
    ~init:(fun () -> 0)
    ~step:(fun _rng streak (obs : Io.World.obs) ->
      let streak = if obs.from_user = Msg.Int k then min 1000 (streak + 1) else 0 in
      (streak, Io.World.say_user (Msg.Int streak)))
    ~view:(fun streak -> Msg.Int streak)

let compact_goal k =
  Goal.make
    ~name:(Printf.sprintf "compact-magic-%d" k)
    ~worlds:[ compact_world k ]
    ~referee:
      (Referee.compact "streak-alive" (fun views_rev ->
           match views_rev with
           | Msg.Int streak :: rest -> streak > 0 || List.length rest < 5
           | _ -> true))

let streak_sensing =
  Sensing.of_predicate ~name:"streak-alive" (fun view ->
      match View.latest view with
      | Some { View.from_world = Msg.Int streak; _ } -> streak > 0
      | Some _ -> false
      | None -> true)

let test_compact_checkpoint_resumes_index () =
  let cp = Universal.new_checkpoint () in
  let user stats =
    Universal.compact ~grace:1 ~checkpoint:cp ~stats ~enum:(senders 6)
      ~sensing:streak_sensing ()
  in
  let stats1 = Universal.new_stats () in
  let _ =
    Exec.run
      ~config:(Exec.config ~horizon:8 ())
      ~goal:(compact_goal 4) ~user:(user stats1) ~server:idle_server
      (Rng.make 1)
  in
  let resumed_from = cp.Universal.saved_index in
  Alcotest.(check bool) "progress checkpointed" true (resumed_from > 0);
  let stats2 = Universal.new_stats () in
  let outcome, _ =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:1500 ())
      ~goal:(compact_goal 4) ~user:(user stats2) ~server:idle_server
      (Rng.make 2)
  in
  Alcotest.(check bool) "resumed run settles" true outcome.Outcome.achieved;
  (* switches = settled index - resume index proves the second life
     started the enumeration at the checkpoint, not at 0. *)
  Alcotest.(check int) "enumeration resumed at the checkpoint"
    (stats2.Universal.current_index - resumed_from)
    stats2.Universal.switches

(* Wedge detector *)

let test_wedge_detector_breaks_stalls () =
  (* With a huge grace and no wedge detector the user spins on the
     first wrong sender; the wedge detector notices the frozen world
     view and forces re-enumeration. *)
  let run ?wedge_after () =
    let stats = Universal.new_stats () in
    let user =
      Universal.compact ~grace:500 ?wedge_after ~stats ~enum:(senders 6)
        ~sensing:streak_sensing ()
    in
    let outcome, _ =
      Exec.run_outcome
        ~config:(Exec.config ~horizon:120 ())
        ~goal:(compact_goal 4) ~user ~server:idle_server (Rng.make 3)
    in
    (outcome.Outcome.achieved, stats.Universal.switches)
  in
  let stuck_achieved, stuck_switches = run () in
  Alcotest.(check bool) "no wedge detector: stuck" false stuck_achieved;
  Alcotest.(check int) "no wedge detector: no switches" 0 stuck_switches;
  let achieved, switches = run ~wedge_after:3 () in
  Alcotest.(check bool) "wedge detector: achieves" true achieved;
  Alcotest.(check bool) "wedge detector: re-enumerates" true (switches >= 4)

(* Retry with exponential backoff *)

let test_retries_slow_the_enumeration () =
  let switches ~retries =
    let stats = Universal.new_stats () in
    let user =
      Universal.compact ~grace:1 ~retries ~stats ~enum:(senders 6)
        ~sensing:streak_sensing ()
    in
    let _ =
      Exec.run
        ~config:(Exec.config ~horizon:40 ())
        ~goal:(compact_goal 5) ~user ~server:idle_server (Rng.make 4)
    in
    stats.Universal.switches
  in
  let eager = switches ~retries:0 in
  let patient = switches ~retries:2 in
  Alcotest.(check bool) "baseline switches" true (eager > 0);
  (* Each index is retried with doubled patience (1+2+4 rounds) before
     the enumeration advances, so far fewer indices are abandoned. *)
  Alcotest.(check bool)
    (Printf.sprintf "retries spend longer per index (%d < %d)" patient eager)
    true
    (patient < eager)

let test_retries_still_converge () =
  let user =
    Universal.compact ~grace:1 ~retries:2 ~enum:(senders 6)
      ~sensing:streak_sensing ()
  in
  let outcome, _ =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:1500 ())
      ~goal:(compact_goal 4) ~user ~server:idle_server (Rng.make 5)
  in
  Alcotest.(check bool) "achieves despite backoff" true outcome.Outcome.achieved

(* Tolerant sensing *)

let event ~round from_world =
  {
    View.round;
    from_server = Msg.Silence;
    from_world;
    to_server = Msg.Silence;
    to_world = Msg.Silence;
    halted = false;
  }

let view_of_worlds ws =
  List.fold_left
    (fun (v, r) w -> (View.extend v (event ~round:r w), r + 1))
    (View.empty, 1) ws
  |> fst

let bad_latest =
  Sensing.of_predicate ~name:"latest-ok" (fun view ->
      match View.latest view with
      | Some { View.from_world = Msg.Int 0; _ } -> false
      | _ -> true)

let pp_verdict ppf = function
  | Sensing.Positive -> Format.pp_print_string ppf "Positive"
  | Sensing.Negative -> Format.pp_print_string ppf "Negative"

let verdict_t = Alcotest.testable pp_verdict ( = )

let test_tolerant_filters_transients () =
  let tol = Sensing.tolerant ~window:3 ~threshold:2 bad_latest in
  (* One bad round in the window: filtered. *)
  let blip = view_of_worlds [ Msg.Int 1; Msg.Int 1; Msg.Int 0 ] in
  Alcotest.check verdict_t "raw verdict negative" Sensing.Negative
    (bad_latest.Sensing.sense blip);
  Alcotest.check verdict_t "single blip tolerated" Sensing.Positive
    (tol.Sensing.sense blip);
  (* Two bad rounds in the window: reported. *)
  let streaky = view_of_worlds [ Msg.Int 1; Msg.Int 0; Msg.Int 0 ] in
  Alcotest.check verdict_t "persistent failure reported" Sensing.Negative
    (tol.Sensing.sense streaky)

let test_tolerant_1_of_1_is_identity () =
  let tol = Sensing.tolerant ~window:1 ~threshold:1 bad_latest in
  List.iter
    (fun ws ->
      let v = view_of_worlds ws in
      Alcotest.check verdict_t "agrees with base"
        (bad_latest.Sensing.sense v) (tol.Sensing.sense v))
    [ [ Msg.Int 0 ]; [ Msg.Int 1 ]; [ Msg.Int 0; Msg.Int 1 ]; [ Msg.Int 1; Msg.Int 0 ] ]

let test_tolerant_validation () =
  Alcotest.check_raises "window"
    (Invalid_argument "Sensing.tolerant: window must be positive") (fun () ->
      ignore (Sensing.tolerant ~window:0 ~threshold:1 bad_latest));
  Alcotest.check_raises "threshold"
    (Invalid_argument "Sensing.tolerant: threshold must be in 1..window")
    (fun () -> ignore (Sensing.tolerant ~window:2 ~threshold:3 bad_latest))

(* E16 invariants (acceptance criteria of the fault matrix) *)

let test_e16_invariants () =
  let rows = Goalcom_harness.E16_fault_matrix.rows ~seed:1 in
  Alcotest.(check bool) "matrix is populated" true (List.length rows >= 16);
  List.iter
    (fun (r : Goalcom_harness.E16_fault_matrix.row) ->
      let label = Printf.sprintf "%s/%s" r.goal_name r.spec in
      Alcotest.(check int) (label ^ ": no unsafe halts") 0 r.unsafe_halts;
      if r.recoverable then
        Alcotest.(check bool)
          (Printf.sprintf "%s: universal (%.2f) >= oracle (%.2f)" label
             r.universal_rate r.oracle_rate)
          true
          (r.universal_rate >= r.oracle_rate -. 1e-9)
      else
        Alcotest.(check bool)
          (label ^ ": fatal stack defeats everyone") true
          (r.universal_rate = 0. && r.oracle_rate = 0. && r.fixed_rate = 0.))
    rows

let suite =
  [
    ("crash_restart resets server state", `Quick, test_crash_restart_resets_state);
    ("intermittent outage is silent", `Quick, test_intermittent_outage_is_silent);
    ("adversary budget exhausts", `Quick, test_adversary_budget_exhausts);
    ("reorder conserves messages", `Quick, test_reorder_conserves_messages);
    ("corrupt stays in the alphabet", `Quick, test_corrupt_flips_to_valid_symbol);
    ("compose order and naming", `Quick, test_compose_order_and_name);
    ("spec parser", `Quick, test_spec_parser);
    ("spec parse errors", `Quick, test_spec_errors);
    ("loss alias", `Quick, test_loss_alias);
    ("finite checkpoint resumes schedule", `Quick, test_finite_checkpoint_resumes_schedule);
    ("compact checkpoint resumes index", `Quick, test_compact_checkpoint_resumes_index);
    ("wedge detector breaks stalls", `Quick, test_wedge_detector_breaks_stalls);
    ("retries slow the enumeration", `Quick, test_retries_slow_the_enumeration);
    ("retries still converge", `Quick, test_retries_still_converge);
    ("tolerant sensing filters transients", `Quick, test_tolerant_filters_transients);
    ("tolerant 1-of-1 is the base sensing", `Quick, test_tolerant_1_of_1_is_identity);
    ("tolerant validation", `Quick, test_tolerant_validation);
    ("E16 invariants", `Slow, test_e16_invariants);
    QCheck_alcotest.to_alcotest prop_sensing_safe_under_faults;
    QCheck_alcotest.to_alcotest prop_fault_runs_deterministic;
    QCheck_alcotest.to_alcotest prop_identity_faults_are_noops;
  ]

let () = Alcotest.run "faults" [ ("faults", suite) ]
