open Goalcom_prelude

type verdict = Positive | Negative

type t = { name : string; sense : View.t -> verdict }

let make ~name sense = { name; sense }

let constant v =
  { name = (match v with Positive -> "always-positive" | Negative -> "always-negative");
    sense = (fun _ -> v) }

let of_predicate ~name p =
  { name; sense = (fun view -> if p view then Positive else Negative) }

let verdicts t history =
  List.map
    (fun view ->
      let round =
        match View.latest view with Some e -> e.View.round | None -> 0
      in
      (round, t.sense view))
    (View.prefixes history)

let negatives_after t history round =
  Listx.count
    (fun (r, v) -> r > round && v = Negative)
    (verdicts t history)

(* The verdict at round r is the raw verdict on the view as it stood at
   round r; the tolerant verdict looks at the raw verdicts over the last
   [window] rounds and only reports Negative when at least [threshold]
   of them are Negative.  This keeps compact safety for persistent
   failures (a failing execution eventually makes every recent raw
   verdict Negative, so tolerant negatives also recur forever) while a
   transient fault — one bad round inside a healthy stretch — no longer
   evicts the correct strategy.  Do NOT use this with finite-goal
   halting: making Negative harder makes Positive easier, which is the
   unsafe direction when positives trigger halting. *)
let tolerant ~window ~threshold t =
  if window <= 0 then invalid_arg "Sensing.tolerant: window must be positive";
  if threshold <= 0 || threshold > window then
    invalid_arg "Sensing.tolerant: threshold must be in 1..window";
  let name = Printf.sprintf "%s/tolerant(%d-of-%d)" t.name threshold window in
  {
    name;
    sense =
      (fun view ->
        let depth = min window (View.length view) in
        if depth = 0 then Positive
        else begin
          let raw0 = t.sense view in
          let rec negs k acc =
            if k >= depth || acc >= threshold then acc
            else begin
              let v = t.sense (View.drop_latest k view) in
              negs (k + 1) (if v = Negative then acc + 1 else acc)
            end
          in
          let n = negs 1 (if raw0 = Negative then 1 else 0) in
          if n >= threshold then Negative
          else begin
            (* A raw negative masked by a healthy recent window is the
               interesting tolerant-sensing event: record it when
               tracing (every unmasked verdict is already visible to
               the universal user's own [Sense] emission). *)
            if raw0 = Negative && Trace.enabled () then
              Trace.emit
                (Trace.Sense
                   {
                     round =
                       (match View.latest view with
                       | Some e -> e.View.round
                       | None -> 0);
                     sensor = name ^ "/mask";
                     positive = true;
                     clock = n;
                     patience = threshold;
                   });
            Positive
          end
        end);
  }

let corrupt_unsafe ~flip_to_positive rng t =
  {
    name = Printf.sprintf "%s/unsafe(%.2f)" t.name flip_to_positive;
    sense =
      (fun view ->
        match t.sense view with
        | Positive -> Positive
        | Negative ->
            if Rng.bernoulli rng flip_to_positive then Positive else Negative);
  }

let corrupt_unviable t =
  { name = t.name ^ "/unviable"; sense = (fun _ -> Negative) }

(* A user that runs [inner] but halts as soon as sensing turns positive.
   The view is threaded exactly as in {!View.of_history}: the event for
   round r pairs the round-r sends with the messages received when
   acting at round r (i.e. emitted at round r-1); sensing therefore sees
   the rounds completed so far. *)
let halt_on_positive sensing inner =
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "halt-on-%s(%s)" sensing.name (Strategy.name inner))
    ~init:(fun () -> (I.create inner, View.empty, None))
    ~step:(fun rng (inst, view, pending) (obs : Io.User.obs) ->
      let view =
        match pending with
        | None -> view
        | Some (prev_obs, (prev_act : Io.User.act)) ->
            View.extend view
              {
                View.round = prev_obs.Io.User.round;
                from_server = prev_obs.Io.User.from_server;
                from_world = prev_obs.Io.User.from_world;
                to_server = prev_act.to_server;
                to_world = prev_act.to_world;
                halted = false;
              }
      in
      match sensing.sense view with
      | Positive -> ((inst, view, None), Io.User.halt_act)
      | Negative ->
          let act = { (I.step rng inst obs) with Io.User.halt = false } in
          ((inst, view, Some (obs, act)), act))

type report = {
  property : string;
  holds : bool;
  checked : int;
  counterexamples : string list;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s: %s (%d cases checked)%a@]" r.property
    (if r.holds then "HOLDS" else "VIOLATED")
    r.checked
    (fun ppf -> function
      | [] -> ()
      | exs ->
          List.iter (fun e -> Format.fprintf ppf "@,  counterexample: %s" e) exs)
    r.counterexamples

let max_counterexamples = 5

let build_report property checked counterexamples =
  {
    property;
    holds = counterexamples = [];
    checked;
    counterexamples = Listx.take max_counterexamples counterexamples;
  }

let tail_cutoff ?tail_window history =
  let rounds = History.length history in
  let window =
    match tail_window with Some w -> max 1 w | None -> max 1 (rounds / 5)
  in
  rounds - window

(* Each trial is paired with a different non-deterministic world of the
   goal, so the validators quantify (by sampling) over the world choice
   as well. *)
let config_for_trial ?config ~goal trial =
  let base = match config with Some c -> c | None -> Exec.config () in
  Exec.{ base with world_choice = trial mod Goal.num_worlds goal }

let check_safety_compact ?config ?tail_window ?(trials = 3) ~goal ~users
    ~servers t rng =
  let trials = max trials (Goal.num_worlds goal) in
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun user ->
      List.iter
        (fun server ->
          for trial = 1 to trials do
            incr checked;
            let trial_rng = Rng.split rng in
            let config = config_for_trial ?config ~goal trial in
            let outcome, history =
              Exec.run_outcome ~config ?tail_window ~goal ~user ~server
                trial_rng
            in
            if not outcome.Outcome.achieved then begin
              let cutoff = tail_cutoff ?tail_window history in
              let late_negatives =
                Listx.count
                  (fun (r, v) -> r > cutoff && v = Negative)
                  (verdicts t history)
              in
              if late_negatives = 0 then
                counterexamples :=
                  Printf.sprintf
                    "user=%s server=%s trial=%d: goal failed but no negative \
                     indication after round %d"
                    (Strategy.name user) (Strategy.name server) trial cutoff
                  :: !counterexamples
            end
          done)
        servers)
    users;
  build_report
    (Printf.sprintf "compact safety of %s for %s" t.name (Goal.name goal))
    !checked (List.rev !counterexamples)

let check_viability_compact ?config ?tail_window ?(trials = 3) ~goal ~user_for
    ~servers t rng =
  let trials = max trials (Goal.num_worlds goal) in
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun server ->
      let user = user_for server in
      for trial = 1 to trials do
        incr checked;
        let trial_rng = Rng.split rng in
        let config = config_for_trial ?config ~goal trial in
        let outcome, history =
          Exec.run_outcome ~config ?tail_window ~goal ~user ~server trial_rng
        in
        let cutoff = tail_cutoff ?tail_window history in
        let late_negatives =
          Listx.count
            (fun (r, v) -> r > cutoff && v = Negative)
            (verdicts t history)
        in
        if not outcome.Outcome.achieved then
          counterexamples :=
            Printf.sprintf "server=%s trial=%d: designated user %s failed the goal"
              (Strategy.name server) trial (Strategy.name user)
            :: !counterexamples
        else if late_negatives > 0 then
          counterexamples :=
            Printf.sprintf
              "server=%s trial=%d: %d negative indications after round %d"
              (Strategy.name server) trial late_negatives cutoff
            :: !counterexamples
      done)
    servers;
  build_report
    (Printf.sprintf "compact viability of %s for %s" t.name (Goal.name goal))
    !checked (List.rev !counterexamples)

let check_safety_finite ?config ?(trials = 3) ~goal ~users ~servers t rng =
  let trials = max trials (Goal.num_worlds goal) in
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun user ->
      let wrapped = halt_on_positive t user in
      List.iter
        (fun server ->
          for trial = 1 to trials do
            incr checked;
            let trial_rng = Rng.split rng in
            let config = config_for_trial ?config ~goal trial in
            let outcome, _ =
              Exec.run_outcome ~config ~goal ~user:wrapped ~server trial_rng
            in
            (* If the wrapped user halted, it was on a positive indication;
               safety demands the referee then accepts. *)
            if outcome.Outcome.halted && not outcome.Outcome.achieved then
              counterexamples :=
                Printf.sprintf
                  "user=%s server=%s trial=%d: halted on a positive indication \
                   at round %s but the referee rejects"
                  (Strategy.name user) (Strategy.name server) trial
                  (match outcome.Outcome.halt_round with
                  | Some r -> string_of_int r
                  | None -> "?")
                :: !counterexamples
          done)
        servers)
    users;
  build_report
    (Printf.sprintf "finite safety of %s for %s" t.name (Goal.name goal))
    !checked (List.rev !counterexamples)

let check_viability_finite ?config ?(trials = 3) ~goal ~user_for ~servers t rng
    =
  let trials = max trials (Goal.num_worlds goal) in
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun server ->
      let user = user_for server in
      for trial = 1 to trials do
        incr checked;
        let trial_rng = Rng.split rng in
        let config = config_for_trial ?config ~goal trial in
        let history = Exec.run ~config ~goal ~user ~server trial_rng in
        let got_positive =
          List.exists (fun (_, v) -> v = Positive) (verdicts t history)
        in
        if not got_positive then
          counterexamples :=
            Printf.sprintf
              "server=%s trial=%d: user %s never received a positive indication"
              (Strategy.name server) trial (Strategy.name user)
            :: !counterexamples
      done)
    servers;
  build_report
    (Printf.sprintf "finite viability of %s for %s" t.name (Goal.name goal))
    !checked (List.rev !counterexamples)
