examples/delegation_demo.ml: Delegation Dialect Enum Exec Format Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers History List Listx Msg Outcome Rng Transform
