(* Tests for multi-session goals: a finite goal repeated forever,
   judged by "all but finitely many sessions pass". *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let alphabet = 4
let doc = [ 2; 5 ]
let session_length = 30
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i

let base_goal = Printing.goal ~docs:[ doc ] ~alphabet ()
let ms_goal = Multi_session.goal ~session_length base_goal

let run ~user ~server ?(horizon = 3000) seed =
  Exec.run_outcome
    ~config:(Exec.config ~horizon ())
    ~goal:ms_goal ~user ~server (Rng.make seed)

let test_header_roundtrip () =
  let m =
    Msg.Pair (Msg.Pair (Msg.Int 3, Msg.Text "pass"), Msg.Int 7)
  in
  (match Multi_session.header_of_msg m with
  | Some (3, Multi_session.Pass, Msg.Int 7) -> ()
  | _ -> Alcotest.fail "header decode");
  Alcotest.(check bool) "garbage rejected" true
    (Multi_session.header_of_msg (Msg.Int 0) = None);
  Alcotest.(check string) "flag strings" "fail"
    (Multi_session.flag_to_string Multi_session.Fail)

let test_goal_validation () =
  Alcotest.check_raises "compact inner"
    (Invalid_argument "Multi_session.goal: inner goal must be finite")
    (fun () ->
      ignore (Multi_session.goal ~session_length:10 (Control.goal ~alphabet ())));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Multi_session.goal: session_length must be positive")
    (fun () -> ignore (Multi_session.goal ~session_length:0 base_goal))

let test_informed_wrapped_passes_every_session () =
  let user = Multi_session.wrap_user (Printing.informed_user ~alphabet (dialect 0)) in
  let server = Printing.server ~alphabet (dialect 0) in
  let outcome, history = run ~user ~server 1 in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved;
  let results = Multi_session.session_results history in
  Alcotest.(check bool) "many sessions" true (List.length results > 50);
  Alcotest.(check bool) "all pass" true (List.for_all Fun.id results)

let test_wrong_dialect_fails_every_session () =
  let user = Multi_session.wrap_user (Printing.informed_user ~alphabet (dialect 1)) in
  let server = Printing.server ~alphabet (dialect 0) in
  let outcome, history = run ~user ~server 2 in
  Alcotest.(check bool) "not achieved" false outcome.Outcome.achieved;
  let results = Multi_session.session_results history in
  Alcotest.(check bool) "no session passes" true
    (List.for_all not results)

let test_universal_converges () =
  List.iter
    (fun i ->
      let stats = Universal.new_stats () in
      let user =
        Universal.compact ~grace:1 ~stats
          ~enum:(Multi_session.wrap_class (Printing.user_class ~alphabet dialects))
          ~sensing:Multi_session.sensing ()
      in
      let server = Printing.server ~alphabet (dialect i) in
      let outcome, history = run ~user ~server ~horizon:6000 (10 + i) in
      let results = Multi_session.session_results history in
      let tail_ok =
        List.for_all Fun.id (Listx.drop (List.length results - 5) results)
      in
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d achieved (switches=%d)" i stats.Universal.switches)
        true outcome.Outcome.achieved;
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d: last sessions all pass" i)
        true tail_ok;
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "dialect %d: some early session failed" i)
          true
          (List.exists not results))
    (Listx.range 0 alphabet)

let test_sensing_fires_once_per_failed_session () =
  (* A never-matching user: every session fails, and the sensing
     function reports exactly one negative per completed session. *)
  let user =
    Multi_session.wrap_user
      (Strategy.stateless ~name:"mute" (fun (_ : Io.User.obs) -> Io.User.silent))
  in
  let server = Printing.server ~alphabet (dialect 0) in
  (* +5 rounds so the last boundary's broadcast is still delivered and
     sensed within the horizon. *)
  let _, history = run ~user ~server ~horizon:((6 * session_length) + 5) 3 in
  let failed_sessions =
    Listx.count not (Multi_session.session_results history)
  in
  let negatives =
    Listx.count
      (fun (_, v) -> v = Sensing.Negative)
      (Sensing.verdicts Multi_session.sensing history)
  in
  Alcotest.(check bool) "some sessions completed" true (failed_sessions >= 4);
  Alcotest.(check int) "one negative per failed session" failed_sessions negatives

let test_session_results_of_empty_history () =
  let user = Multi_session.wrap_user (Printing.informed_user ~alphabet (dialect 0)) in
  let server = Printing.server ~alphabet (dialect 0) in
  let history =
    Exec.run
      ~config:(Exec.config ~horizon:(session_length / 2) ())
      ~goal:ms_goal ~user ~server (Rng.make 4)
  in
  Alcotest.(check (list bool)) "no completed sessions" []
    (Multi_session.session_results history)

let () =
  Alcotest.run "multi_session"
    [
      ( "multi_session",
        [
          Alcotest.test_case "header roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "validation" `Quick test_goal_validation;
          Alcotest.test_case "informed passes every session" `Quick
            test_informed_wrapped_passes_every_session;
          Alcotest.test_case "wrong dialect fails every session" `Quick
            test_wrong_dialect_fails_every_session;
          Alcotest.test_case "universal converges" `Quick test_universal_converges;
          Alcotest.test_case "one negative per failed session" `Quick
            test_sensing_fires_once_per_failed_session;
          Alcotest.test_case "no sessions yet" `Quick
            test_session_results_of_empty_history;
        ] );
    ]
