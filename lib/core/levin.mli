(** Levin-style parallel enumeration schedules [6].

    The finite-goal universal user cannot run candidate strategies truly
    in parallel — it interacts with one live world — so "parallel"
    enumeration becomes a schedule of {e sessions}: candidate [i] is run
    repeatedly, with geometrically growing budgets, such that the total
    work spent before candidate [i] has received [t] rounds of budget is
    [O(2^i * t)] — Levin's classic overhead. *)

type slot = { index : int; budget : int }

val schedule : ?base:int -> unit -> slot Seq.t
(** The infinite Levin schedule: phase [k] (k = 0, 1, ...) runs
    candidates [0..k], candidate [i] with budget [base * 2^(k-i)].
    [base] defaults to 1.  @raise Invalid_argument if [base <= 0]. *)

val round_robin : ?budget:int -> width:int -> unit -> slot Seq.t
(** Naive baseline: cycle through candidates [0..width-1] with a fixed
    per-session budget.  @raise Invalid_argument on bad parameters. *)

val hinted : hints:slot list -> slot Seq.t -> slot Seq.t
(** [hinted ~hints schedule] runs the hint sessions first, then the
    unmodified schedule — the warm-start shape: a known-good candidate
    (recorded by a previous run) is probed up front, and if the hint is
    stale the enumeration falls through to the cold schedule having
    spent only the hints' budgets.  @raise Invalid_argument on a
    negative index or non-positive budget. *)

val work_before : ?base:int -> index:int -> budget:int -> unit -> int
(** Total budget consumed by the {!schedule} strictly before the first
    slot that gives candidate [index] a budget of at least [budget]
    (the analytic Levin overhead; used by the experiments to compare
    measured against predicted cost). *)
