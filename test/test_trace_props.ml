(* Trace-invariant property suite: randomised runs (with and without
   fault stacks) whose recorded traces must satisfy the structural
   invariants of Trace, plus determinism and no-perturbation laws for
   the tracing machinery itself. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_faults

let qcount = 40
let alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet

(* Randomised fault stacks, as in test_faults. *)
let spec_frag_gen =
  QCheck.Gen.(
    oneof
      [
        return "nop";
        map (Printf.sprintf "delay:%d") (int_bound 2);
        map (fun d -> Printf.sprintf "drop:0.%d" d) (int_bound 3);
        return "dup";
        map (fun d -> Printf.sprintf "corrupt:0.%d" d) (int_bound 3);
        map (Printf.sprintf "reorder:%d") (int_bound 2);
        return "burst:0.2,0.3,0.8";
        map (fun k -> Printf.sprintf "crash:%d" (10 + k)) (int_bound 40);
        return "intermittent:10,3";
        map (Printf.sprintf "adversary:%d") (int_bound 15);
      ])

let stack_spec_gen =
  QCheck.Gen.(map (String.concat "+") (list_size (1 -- 3) spec_frag_gen))

let stack_spec_arb = QCheck.make stack_spec_gen ~print:(fun s -> s)

let doc = [ 3; 1 ]
let printing_goal = Printing.goal ~docs:[ doc ] ~alphabet ()

let faulted_printing_trace ~spec ~seed ~horizon =
  let server =
    Fault.apply
      (match Fault.stack_of_string ~alphabet spec with
      | Ok f -> f
      | Error e -> invalid_arg e)
      (Printing.server ~alphabet (Enum.get_exn dialects (seed mod alphabet)))
  in
  let user = Printing.universal_user ~alphabet dialects in
  Goalcom_obs.Recorder.record (fun () ->
      Exec.run
        ~config:(Exec.config ~horizon ())
        ~goal:printing_goal ~user ~server (Rng.make seed))

let holds invariants events =
  match Trace.check invariants events with
  | Ok () -> true
  | Error msg -> QCheck.Test.fail_report msg

let prop_rounds_increase =
  QCheck.Test.make ~count:qcount ~name:"Trace: round numbers strictly increase"
    QCheck.(pair stack_spec_arb (int_bound 100_000))
    (fun (spec, seed) ->
      let _, events = faulted_printing_trace ~spec ~seed ~horizon:250 in
      holds [ Trace.rounds_increase ] events)

let prop_no_emission_after_drain =
  QCheck.Test.make ~count:qcount
    ~name:"Trace: no emission after the user halts (beyond drain)"
    QCheck.(pair stack_spec_arb (int_bound 100_000))
    (fun (spec, seed) ->
      let _, events = faulted_printing_trace ~spec ~seed ~horizon:250 in
      holds [ Trace.no_emission_after_drain ] events)

(* Switch events come from the compact construction; drive it with the
   magic-number toy so the enumeration demonstrably scans and settles. *)

let compact_world k =
  World.make
    ~name:(Printf.sprintf "compact-magic-%d" k)
    ~init:(fun () -> 0)
    ~step:(fun _rng streak (obs : Io.World.obs) ->
      let streak = if obs.from_user = Msg.Int k then min 1000 (streak + 1) else 0 in
      (streak, Io.World.say_user (Msg.Int streak)))
    ~view:(fun streak -> Msg.Int streak)

let compact_goal k =
  Goal.make
    ~name:(Printf.sprintf "compact-magic-%d" k)
    ~worlds:[ compact_world k ]
    ~referee:
      (Referee.compact "streak-alive" (fun views_rev ->
           match views_rev with
           | Msg.Int streak :: rest -> streak > 0 || List.length rest < 5
           | _ -> true))

let sender i =
  Strategy.make
    ~name:(Printf.sprintf "send-%d" i)
    ~init:(fun () -> ())
    ~step:(fun _rng () (_ : Io.User.obs) -> ((), Io.User.say_world (Msg.Int i)))

let senders n = Enum.tabulate ~name:"senders" n sender

let idle_server =
  Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let streak_sensing =
  Sensing.of_predicate ~name:"streak" (fun view ->
      match View.latest view with
      | Some e -> e.View.from_world <> Msg.Int 0
      | None -> false)

let compact_trace ~k ~n ~grace ~retries ~seed =
  let user =
    Universal.compact ~grace ~retries ~enum:(senders n)
      ~sensing:streak_sensing ()
  in
  Goalcom_obs.Recorder.record (fun () ->
      Exec.run
        ~config:(Exec.config ~horizon:150 ())
        ~goal:(compact_goal k) ~user ~server:idle_server (Rng.make seed))

let compact_params =
  QCheck.make
    ~print:(fun (k, n, grace, retries, seed) ->
      Printf.sprintf "k=%d n=%d grace=%d retries=%d seed=%d" k n grace retries
        seed)
    QCheck.Gen.(
      let* n = 2 -- 6 in
      let* k = 0 -- (n - 1) in
      let* grace = 1 -- 3 in
      let* retries = 0 -- 2 in
      let* seed = int_bound 100_000 in
      return (k, n, grace, retries, seed))

let prop_switch_follows_negative =
  QCheck.Test.make ~count:qcount
    ~name:"Trace: every switch is preceded by a negative verdict"
    compact_params
    (fun (k, n, grace, retries, seed) ->
      let _, events = compact_trace ~k ~n ~grace ~retries ~seed in
      (* The run must actually exercise switching for the property to
         mean anything; with k > 0 the enumeration starts wrong. *)
      let switches =
        List.exists (function Trace.Switch _ -> true | _ -> false) events
      in
      QCheck.assume (k = 0 || switches);
      holds [ Trace.switch_follows_negative ] events)

let prop_trace_deterministic =
  QCheck.Test.make ~count:qcount
    ~name:"Trace: same seed, same fault stack => bit-identical trace"
    QCheck.(pair stack_spec_arb (int_bound 100_000))
    (fun (spec, seed) ->
      let _, a = faulted_printing_trace ~spec ~seed ~horizon:200 in
      let _, b = faulted_printing_trace ~spec ~seed ~horizon:200 in
      Goalcom_obs.Jsonl.to_lines a = Goalcom_obs.Jsonl.to_lines b)

let prop_tracing_does_not_perturb =
  (* The sink must be write-only: the history of a traced run is the
     history of the untraced run, fault stacks included. *)
  QCheck.Test.make ~count:qcount
    ~name:"Trace: recording does not change the execution"
    QCheck.(pair stack_spec_arb (int_bound 100_000))
    (fun (spec, seed) ->
      let run () =
        let server =
          Fault.apply
            (match Fault.stack_of_string ~alphabet spec with
            | Ok f -> f
            | Error e -> invalid_arg e)
            (Printing.server ~alphabet
               (Enum.get_exn dialects (seed mod alphabet)))
        in
        Exec.run
          ~config:(Exec.config ~horizon:200 ())
          ~goal:printing_goal
          ~user:(Printing.universal_user ~alphabet dialects)
          ~server (Rng.make seed)
      in
      let untraced = run () in
      let traced, _ = Goalcom_obs.Recorder.record run in
      History.rounds untraced = History.rounds traced)

let prop_history_replay_matches_live =
  (* History.trace_events reconstructs exactly the engine-level
     subsequence of the live trace (everything except Run_start and the
     strategy/fault events). *)
  QCheck.Test.make ~count:qcount
    ~name:"Trace: post-hoc history replay matches the live engine events"
    QCheck.(pair stack_spec_arb (int_bound 100_000))
    (fun (spec, seed) ->
      let history, events = faulted_printing_trace ~spec ~seed ~horizon:200 in
      let live_engine =
        List.filter
          (function
            | Trace.Round_start _ | Trace.Emit _ | Trace.Halt _
            | Trace.Run_end _ ->
                true
            | _ -> false)
          events
      in
      History.trace_events history = live_engine)

(* Directed unit checks: the invariant checker must actually reject. *)

let test_check_rejects_bad_rounds () =
  let bad =
    [ Trace.Round_start { round = 1 }; Trace.Round_start { round = 1 } ]
  in
  match Trace.check Trace.standard bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-increasing rounds accepted"

let test_check_rejects_late_emission () =
  let bad =
    [
      Trace.Run_start
        {
          goal = "g";
          user = "u";
          server = "s";
          horizon = 10;
          drain = 1;
          world_choice = 0;
        };
      Trace.Halt { round = 2 };
      Trace.Emit
        { round = 4; src = Trace.User; dst = Trace.Server; msg = Msg.Int 0 };
    ]
  in
  match Trace.check [ Trace.no_emission_after_drain ] bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "post-drain emission accepted"

let test_check_rejects_unjustified_switch () =
  let bad =
    [
      Trace.Sense
        { round = 3; sensor = "s"; positive = true; clock = 1; patience = 1 };
      Trace.Switch { round = 3; from_index = 0; to_index = 1; attempt = 0 };
    ]
  in
  match Trace.check [ Trace.switch_follows_negative ] bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "switch after positive verdict accepted"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rounds_increase;
    QCheck_alcotest.to_alcotest prop_no_emission_after_drain;
    QCheck_alcotest.to_alcotest prop_switch_follows_negative;
    QCheck_alcotest.to_alcotest prop_trace_deterministic;
    QCheck_alcotest.to_alcotest prop_tracing_does_not_perturb;
    QCheck_alcotest.to_alcotest prop_history_replay_matches_live;
    Alcotest.test_case "check rejects bad rounds" `Quick
      test_check_rejects_bad_rounds;
    Alcotest.test_case "check rejects late emission" `Quick
      test_check_rejects_late_emission;
    Alcotest.test_case "check rejects unjustified switch" `Quick
      test_check_rejects_unjustified_switch;
  ]

let () = Alcotest.run "trace-props" [ ("trace", suite) ]
