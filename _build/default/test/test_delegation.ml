(* Tests for the delegation goal: verification-based sensing, liars
   caught, universality over dialected solvers. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i
let goal = Delegation.goal ~alphabet ()

let run ~user ~server ?(horizon = 600) seed =
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_informed_delegates () =
  List.iter
    (fun i ->
      let user = Delegation.informed_user ~alphabet (dialect i) in
      let server = Delegation.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server (10 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_mismatch_fails () =
  let user = Delegation.informed_user ~alphabet (dialect 1) in
  let server = Delegation.server ~alphabet (dialect 0) in
  let outcome, _ = run ~user ~server 20 in
  Alcotest.(check bool) "not achieved" false outcome.Outcome.achieved

let test_universal_delegates () =
  List.iter
    (fun i ->
      let user = Delegation.universal_user ~alphabet dialects in
      let server = Delegation.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server ~horizon:3000 (30 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "universal vs dialect %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_liar_is_caught () =
  (* The lying solver's answers fail verification; the informed user
     re-asks instead of relaying them, and never claims success. *)
  let user = Delegation.informed_user ~alphabet (dialect 0) in
  let server = Transform.with_dialect (dialect 0) (Delegation.liar ~alphabet) in
  let outcome, history = run ~user ~server 40 in
  Alcotest.(check bool) "not achieved" false outcome.Outcome.achieved;
  Alcotest.(check bool) "bad answers were caught" true
    (Delegation.bad_answers history > 0)

let test_liar_unhelpful () =
  let server = Transform.with_dialect (dialect 0) (Delegation.liar ~alphabet) in
  let verdict =
    Helpful.check
      ~config:(Exec.config ~horizon:400 ())
      ~goal
      ~user_class:(Delegation.user_class ~alphabet dialects)
      ~server (Rng.make 50)
  in
  Alcotest.(check bool) "liar is unhelpful" false verdict.Helpful.helpful

let test_solver_answers_directly () =
  (* Drive the raw solver without the engine: ask for a formula and
     verify the reply satisfies it. *)
  let open Goalcom_sat in
  let rng = Rng.make 60 in
  let cnf, _ = Gen.planted rng ~num_vars:6 ~num_clauses:12 ~clause_len:3 in
  let inst = Strategy.Instance.create (Delegation.solver ~alphabet) in
  let act =
    Strategy.Instance.step rng inst
      {
        Io.Server.from_user =
          Msg.Pair (Msg.Sym Delegation.ask_cmd, Codec.cnf cnf);
        from_world = Msg.Silence;
      }
  in
  match act.Io.Server.to_user with
  | Msg.Pair (Msg.Sym c, payload) ->
      Alcotest.(check int) "answer cmd" Delegation.answer_cmd c;
      (match Codec.assignment_opt ~num_vars:6 payload with
      | Some a -> Alcotest.(check bool) "satisfies" true (Cnf.eval cnf a)
      | None -> Alcotest.fail "undecodable assignment")
  | _ -> Alcotest.fail "no answer"

let test_solver_ignores_garbage () =
  let rng = Rng.make 61 in
  let inst = Strategy.Instance.create (Delegation.solver ~alphabet) in
  let act =
    Strategy.Instance.step rng inst
      { Io.Server.from_user = Msg.Text "hello"; from_world = Msg.Silence }
  in
  Alcotest.(check bool) "silent" true (Msg.is_silence act.Io.Server.to_user)

let test_sensing_safe () =
  let users = Enum.to_list (Delegation.user_class ~alphabet dialects) in
  let servers =
    Enum.to_list (Delegation.server_class ~alphabet dialects)
    @ [ Transform.with_dialect (dialect 0) (Delegation.liar ~alphabet) ]
  in
  let report =
    Sensing.check_safety_finite
      ~config:(Exec.config ~horizon:400 ())
      ~goal ~users ~servers Delegation.sensing (Rng.make 70)
  in
  Alcotest.(check bool) "safety" true report.Sensing.holds

let test_sensing_viable () =
  let servers = Enum.to_list (Delegation.server_class ~alphabet dialects) in
  let user_for server =
    match
      Listx.find_index (fun s -> Strategy.name s = Strategy.name server) servers
    with
    | Some i -> Delegation.informed_user ~alphabet (dialect i)
    | None -> Alcotest.fail "unknown server"
  in
  let report =
    Sensing.check_viability_finite
      ~config:(Exec.config ~horizon:400 ())
      ~goal ~user_for ~servers Delegation.sensing (Rng.make 71)
  in
  Alcotest.(check bool) "viability" true report.Sensing.holds

let () =
  Alcotest.run "delegation"
    [
      ( "delegation",
        [
          Alcotest.test_case "informed delegates" `Quick test_informed_delegates;
          Alcotest.test_case "mismatch fails" `Quick test_mismatch_fails;
          Alcotest.test_case "universal delegates" `Quick test_universal_delegates;
          Alcotest.test_case "liar is caught" `Quick test_liar_is_caught;
          Alcotest.test_case "liar is unhelpful" `Quick test_liar_unhelpful;
          Alcotest.test_case "solver answers" `Quick test_solver_answers_directly;
          Alcotest.test_case "solver ignores garbage" `Quick test_solver_ignores_garbage;
          Alcotest.test_case "sensing safe" `Quick test_sensing_safe;
          Alcotest.test_case "sensing viable" `Quick test_sensing_viable;
        ] );
    ]
