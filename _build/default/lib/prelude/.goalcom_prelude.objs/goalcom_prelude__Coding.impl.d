lib/prelude/coding.ml: Array List
