open Goalcom_sat

type prover = Cnf.t -> prefix:Gf.t list -> Gf.t array

(* Σ over the boolean cube of the variables after [fixed] coordinates. *)
let cube_sum (cnf : Cnf.t) (point : Gf.t array) ~from =
  let n = cnf.num_vars in
  let total = ref Gf.zero in
  let rec go v =
    if v > n then total := Gf.add !total (Arith.formula_eval cnf point)
    else begin
      point.(v) <- Gf.zero;
      go (v + 1);
      point.(v) <- Gf.one;
      go (v + 1)
    end
  in
  go from;
  !total

let honest_prover (cnf : Cnf.t) ~prefix =
  let n = cnf.num_vars in
  let i = List.length prefix + 1 in
  if i > n then invalid_arg "Sumcheck.honest_prover: all variables bound";
  let d = Arith.degree_bound cnf in
  Array.init (d + 1) (fun t ->
      let point = Array.make (n + 1) Gf.zero in
      List.iteri (fun k r -> point.(k + 1) <- r) prefix;
      point.(i) <- Gf.of_int t;
      cube_sum cnf point ~from:(i + 1))

let tampered_prover ~tamper_round ~offset =
  if tamper_round < 1 then invalid_arg "Sumcheck.tampered_prover: bad round";
  if offset = 0 then invalid_arg "Sumcheck.tampered_prover: zero offset";
  fun cnf ~prefix ->
    let samples = honest_prover cnf ~prefix in
    if List.length prefix + 1 = tamper_round then
      Array.mapi
        (fun t s ->
          (* + offset * (2t - 1): vanishes under g(0)+g(1). *)
          Gf.add s (Gf.of_int (offset * ((2 * t) - 1))))
        samples
    else samples

type step =
  | Continue of { claim : Gf.t; challenges : Gf.t list }
  | Accepted
  | Rejected of string

let verify_round rng (cnf : Cnf.t) ~claim ~challenges ~samples =
  let d = Arith.degree_bound cnf in
  if Array.length samples <> d + 1 then
    Rejected
      (Printf.sprintf "expected %d samples, got %d" (d + 1)
         (Array.length samples))
  else if not (Gf.equal (Poly.sum01 samples) claim) then
    Rejected "g(0) + g(1) does not match the claim"
  else begin
    let r = Gf.random rng in
    let claim = Poly.eval_samples samples r in
    let challenges = challenges @ [ r ] in
    if List.length challenges = cnf.num_vars then begin
      let point = Array.make (cnf.num_vars + 1) Gf.zero in
      List.iteri (fun k c -> point.(k + 1) <- c) challenges;
      if Gf.equal (Arith.formula_eval cnf point) claim then Accepted
      else Rejected "final evaluation does not match the reduced claim"
    end
    else Continue { claim; challenges }
  end

let run rng (cnf : Cnf.t) ~claimed ~prover =
  let rec go claim challenges rounds =
    let samples = prover cnf ~prefix:challenges in
    match verify_round rng cnf ~claim ~challenges ~samples with
    | Accepted -> (true, rounds + 1)
    | Rejected _ -> (false, rounds + 1)
    | Continue { claim; challenges } -> go claim challenges (rounds + 1)
  in
  go (Gf.of_int claimed) [] 0
