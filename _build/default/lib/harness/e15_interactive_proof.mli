(** E15 / Table 8 — counting delegation (#SAT) through the sum-check
    protocol: interactive verification with no certificate; honest
    dialected provers universalise, cheating provers are rejected.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
