type 'a t = ('a * float) list

let merge_duplicates pairs =
  (* Quadratic, but distributions in this library are tiny (supports of a
     handful of outcomes). *)
  List.fold_left
    (fun acc (v, p) ->
      let rec add = function
        | [] -> [ (v, p) ]
        | (v', p') :: rest when v' = v -> (v', p' +. p) :: rest
        | kept :: rest -> kept :: add rest
      in
      add acc)
    [] pairs

let of_weighted pairs =
  if pairs = [] then invalid_arg "Dist.of_weighted: empty";
  List.iter
    (fun (_, w) ->
      if w < 0. then invalid_arg "Dist.of_weighted: negative weight")
    pairs;
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  if total <= 0. then invalid_arg "Dist.of_weighted: zero total weight";
  merge_duplicates pairs
  |> List.filter (fun (_, w) -> w > 0.)
  |> List.map (fun (v, w) -> (v, w /. total))

let return v = [ (v, 1.0) ]
let uniform vs = of_weighted (List.map (fun v -> (v, 1.0)) vs)

let bernoulli p =
  let p = Float.max 0. (Float.min 1. p) in
  if p = 0. then return false
  else if p = 1. then return true
  else [ (true, p); (false, 1. -. p) ]

let map f d = merge_duplicates (List.map (fun (v, p) -> (f v, p)) d)

let bind d f =
  merge_duplicates
    (List.concat_map (fun (v, p) -> List.map (fun (w, q) -> (w, p *. q)) (f v)) d)

let support d = List.map fst d

let prob d v =
  match List.assoc_opt v d with Some p -> p | None -> 0.

let to_list d = d
let expect f d = List.fold_left (fun acc (v, p) -> acc +. (p *. f v)) 0. d

let sample rng d =
  let u = Rng.float rng 1.0 in
  let rec go acc = function
    | [] -> invalid_arg "Dist.sample: empty distribution"
    | [ (v, _) ] -> v
    | (v, p) :: rest -> if u < acc +. p then v else go (acc +. p) rest
  in
  go 0. d

let total_variation d1 d2 =
  let values =
    List.sort_uniq compare (support d1 @ support d2)
  in
  0.5
  *. List.fold_left
       (fun acc v -> acc +. Float.abs (prob d1 v -. prob d2 v))
       0. values

let is_normalised d =
  Float.abs (List.fold_left (fun acc (_, p) -> acc +. p) 0. d -. 1.0) < 1e-9
